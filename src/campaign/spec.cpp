#include "campaign/spec.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "platform/builders.hpp"
#include "platform/platform_xml.hpp"
#include "util/check.hpp"

namespace smpi::campaign {

namespace {

enum class ValueKind { kNumber, kString, kBool };

struct ParamInfo {
  ValueKind kind;
  const char* target_key;  // "host", "link", or nullptr when untargeted
};

// The closed catalog of sweepable parameters; an unknown name is rejected at
// parse time so a typo cannot silently produce a no-op axis.
const std::pair<const char*, ParamInfo> kParams[] = {
    {"host_speed_scale", {ValueKind::kNumber, nullptr}},
    {"link_bandwidth_scale", {ValueKind::kNumber, nullptr}},
    {"link_latency_scale", {ValueKind::kNumber, nullptr}},
    {"host_speed", {ValueKind::kNumber, "host"}},
    {"link_bandwidth", {ValueKind::kNumber, "link"}},
    {"link_latency", {ValueKind::kNumber, "link"}},
    {"cpu_scale", {ValueKind::kNumber, nullptr}},
    {"topology_nodes", {ValueKind::kNumber, nullptr}},
    {"placement", {ValueKind::kString, nullptr}},
    {"coll_bcast", {ValueKind::kString, nullptr}},
    {"coll_alltoall", {ValueKind::kString, nullptr}},
    {"coll_allreduce", {ValueKind::kString, nullptr}},
    {"coll_allgather", {ValueKind::kString, nullptr}},
    {"payload_free", {ValueKind::kBool, nullptr}},
    {"eager_threshold", {ValueKind::kNumber, nullptr}},
    {"overhead_send", {ValueKind::kNumber, nullptr}},
    {"overhead_recv", {ValueKind::kNumber, nullptr}},
    {"copy_cost", {ValueKind::kNumber, nullptr}},
    {"workload_ranks", {ValueKind::kNumber, nullptr}},
    {"workload_bytes", {ValueKind::kNumber, nullptr}},
    {"workload_iterations", {ValueKind::kNumber, nullptr}},
    {"workload_imbalance", {ValueKind::kNumber, nullptr}},
    {"workload_seed", {ValueKind::kNumber, nullptr}},
    {"fault_seed", {ValueKind::kNumber, nullptr}},
    {"fault_time_scale", {ValueKind::kNumber, nullptr}},
    {"fault_count_scale", {ValueKind::kNumber, nullptr}},
    {"noise_seed", {ValueKind::kNumber, nullptr}},
};

bool is_workload_param(const std::string& param) {
  return param.rfind("workload_", 0) == 0;
}

const ParamInfo* param_info(const std::string& name) {
  for (const auto& [param, info] : kParams) {
    if (name == param) return &info;
  }
  return nullptr;
}

std::string value_text(const util::JsonValue& v) {
  switch (v.kind()) {
    case util::JsonValue::Kind::kBool: return v.as_bool() ? "true" : "false";
    case util::JsonValue::Kind::kString: return v.as_string();
    default: return v.dump();
  }
}

}  // namespace

const util::JsonValue* Scenario::find(const std::string& key) const {
  for (const auto& [k, v] : params) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool CampaignSpec::sweeps_workload() const {
  for (const Axis& axis : axes) {
    if (is_workload_param(axis.param)) return true;
  }
  return false;
}

CampaignSpec CampaignSpec::parse(const util::JsonValue& doc) {
  SMPI_REQUIRE(doc.is_object(), "campaign spec must be a JSON object");
  CampaignSpec spec;
  if (const auto* name = doc.find("name")) spec.name = name->as_string();
  if (const auto* trace = doc.find("trace")) spec.trace_dir = trace->as_string();
  if (const auto* workload = doc.find("workload")) {
    spec.workload = workload->is_string()
                        ? workload::WorkloadSpec::parse_file(workload->as_string())
                        : workload::WorkloadSpec::parse(*workload);
    spec.has_workload = true;
    SMPI_REQUIRE(spec.trace_dir.empty(),
                 "campaign spec: 'trace' and 'workload' are mutually exclusive");
  }
  if (const auto* faults = doc.find("faults")) {
    spec.faults = faults->is_string() ? sim::FaultSpec::parse_file(faults->as_string())
                                      : sim::FaultSpec::parse(*faults);
  }
  if (const auto* noise = doc.find("noise")) {
    spec.noise = noise->is_string() ? noise::NoiseSpec::parse_file(noise->as_string())
                                    : noise::NoiseSpec::parse(*noise);
  }
  if (const auto* replications = doc.find("replications")) {
    spec.replications = static_cast<int>(replications->as_int());
    SMPI_REQUIRE(spec.replications >= 1 && spec.replications <= 10000,
                 "campaign spec: replications must be in [1, 10000]");
    SMPI_REQUIRE(spec.replications == 1 || !spec.noise.empty(),
                 "campaign spec: replications > 1 needs a 'noise' spec (replicating a "
                 "deterministic scenario would measure nothing)");
  }
  if (const auto* timeout = doc.find("timeout_s")) {
    spec.timeout_s = timeout->as_number();
    SMPI_REQUIRE(spec.timeout_s >= 0, "campaign spec: timeout_s must be >= 0");
  }
  if (const auto* analysis = doc.find("analysis")) {
    spec.analysis = analysis->as_bool();
  }
  if (const auto* resources = doc.find("resources")) {
    spec.resources = resources->as_bool();
  }

  if (const auto* platform = doc.find("platform")) {
    const std::string kind = platform->at("kind", "campaign spec platform").as_string();
    if (kind == "flat") {
      spec.base_kind = BaseKind::kFlat;
      if (const auto* nodes = platform->find("nodes")) {
        spec.base_nodes = static_cast<int>(nodes->as_int());
        SMPI_REQUIRE(spec.base_nodes > 0, "campaign spec: platform.nodes must be > 0");
      }
    } else if (kind == "hierarchical-griffon") {
      spec.base_kind = BaseKind::kGriffon;
    } else if (kind == "hierarchical-gdx") {
      spec.base_kind = BaseKind::kGdx;
    } else if (kind == "xml") {
      spec.base_kind = BaseKind::kXmlFile;
      spec.platform_file = platform->at("file", "campaign spec platform").as_string();
    } else {
      SMPI_REQUIRE(false, "campaign spec: unknown platform.kind '" + kind + "'");
    }
  }

  if (const auto* axes = doc.find("axes")) {
    std::set<std::string> seen;
    for (const auto& entry : axes->items()) {
      Axis axis;
      axis.param = entry.at("param", "campaign axis").as_string();
      const ParamInfo* info = param_info(axis.param);
      SMPI_REQUIRE(info != nullptr, "campaign axis: unknown param '" + axis.param + "'");
      if (info->target_key != nullptr) {
        axis.target = entry.at(info->target_key, "campaign axis '" + axis.param + "'").as_string();
      } else {
        SMPI_REQUIRE(entry.find("host") == nullptr && entry.find("link") == nullptr,
                     "campaign axis '" + axis.param + "' does not take a host/link target");
      }
      const auto& values = entry.at("values", "campaign axis '" + axis.param + "'").items();
      SMPI_REQUIRE(!values.empty(), "campaign axis '" + axis.param + "' has no values");
      for (const auto& v : values) {
        switch (info->kind) {
          case ValueKind::kNumber:
            SMPI_REQUIRE(v.is_number(),
                         "campaign axis '" + axis.param + "': values must be numbers");
            break;
          case ValueKind::kString:
            SMPI_REQUIRE(v.is_string(),
                         "campaign axis '" + axis.param + "': values must be strings");
            break;
          case ValueKind::kBool:
            SMPI_REQUIRE(v.is_bool(),
                         "campaign axis '" + axis.param + "': values must be booleans");
            break;
        }
        axis.values.push_back(v);
      }
      SMPI_REQUIRE(seen.insert(axis.key()).second,
                   "campaign spec: duplicate axis '" + axis.key() + "'");
      spec.axes.push_back(std::move(axis));
    }
  }
  return spec;
}

CampaignSpec CampaignSpec::parse_file(const std::string& path) {
  return parse(util::parse_json_file(path));
}

std::vector<Scenario> enumerate_scenarios(const CampaignSpec& spec) {
  long long total = 1;
  for (const Axis& axis : spec.axes) {
    total *= static_cast<long long>(axis.values.size());
    SMPI_REQUIRE(total <= 100000, "campaign spec: more than 100000 scenarios");
  }

  std::vector<Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(total) + 1);
  Scenario baseline;
  baseline.id = 0;
  baseline.label = "baseline";
  scenarios.push_back(std::move(baseline));

  // Row-major cross-product: the last axis varies fastest.
  for (long long index = 0; index < total; ++index) {
    if (spec.axes.empty()) break;
    Scenario s;
    s.id = static_cast<int>(index) + 1;
    long long rest = index;
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      const Axis& axis = spec.axes[a];
      const auto pick = static_cast<std::size_t>(rest % static_cast<long long>(axis.values.size()));
      rest /= static_cast<long long>(axis.values.size());
      s.params.emplace_back(axis.key(), axis.values[pick]);
    }
    std::reverse(s.params.begin(), s.params.end());
    for (const auto& [key, value] : s.params) {
      if (!s.label.empty()) s.label += ' ';
      s.label += key + "=" + value_text(value);
    }
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

namespace {

platform::Platform build_base(const CampaignSpec& spec, int nranks, int nodes_override) {
  switch (spec.base_kind) {
    case CampaignSpec::BaseKind::kFlat: {
      platform::FlatClusterParams params;
      params.nodes = nodes_override > 0 ? nodes_override
                     : spec.base_nodes > 0 ? spec.base_nodes
                                           : nranks;
      return platform::build_flat_cluster(params);
    }
    case CampaignSpec::BaseKind::kGriffon:
      SMPI_REQUIRE(nodes_override == 0, "topology_nodes applies to the flat base platform only");
      return platform::build_griffon();
    case CampaignSpec::BaseKind::kGdx:
      SMPI_REQUIRE(nodes_override == 0, "topology_nodes applies to the flat base platform only");
      return platform::build_gdx();
    case CampaignSpec::BaseKind::kXmlFile:
      SMPI_REQUIRE(nodes_override == 0, "topology_nodes applies to the flat base platform only");
      return platform::load_platform_from_file(spec.platform_file);
  }
  SMPI_UNREACHABLE("bad base kind");
}

std::vector<int> build_placement(const std::string& policy, int nranks, int hosts) {
  std::vector<int> placement(static_cast<std::size_t>(nranks));
  if (policy == "round_robin") {
    for (int r = 0; r < nranks; ++r) placement[static_cast<std::size_t>(r)] = r % hosts;
  } else if (policy == "block") {
    // Contiguous blocks of ranks per host (the "fill each node first"
    // mapping MPI launchers call by-node vs by-slot).
    for (int r = 0; r < nranks; ++r) {
      placement[static_cast<std::size_t>(r)] =
          static_cast<int>((static_cast<long long>(r) * hosts) / nranks);
    }
  } else if (policy.rfind("stride:", 0) == 0) {
    const int stride = std::stoi(policy.substr(7));
    SMPI_REQUIRE(stride >= 1, "placement stride must be >= 1");
    for (int r = 0; r < nranks; ++r) {
      placement[static_cast<std::size_t>(r)] = static_cast<int>(
          (static_cast<long long>(r) * stride) % hosts);
    }
  } else {
    SMPI_REQUIRE(false, "unknown placement policy '" + policy + "'");
  }
  return placement;
}

}  // namespace

ScenarioSetup materialize(const CampaignSpec& spec, const Scenario& scenario, int nranks,
                          int replication) {
  SMPI_REQUIRE(replication >= 0, "replication index must be >= 0");
  // Topology first: every other override applies to the rebuilt platform.
  int nodes_override = 0;
  if (const auto* nodes = scenario.find("topology_nodes")) {
    nodes_override = static_cast<int>(nodes->as_int());
    SMPI_REQUIRE(nodes_override > 0, "topology_nodes must be > 0");
  }

  ScenarioSetup setup{build_base(spec, nranks, nodes_override), {}, true};
  platform::Platform& p = setup.platform;
  core::SmpiConfig& config = setup.config;
  config.faults = spec.faults;  // fault_* overrides below edit this copy

  for (const auto& [key, value] : scenario.params) {
    const std::string param = key.substr(0, key.find(':'));
    const std::string target = key.find(':') == std::string::npos
                                   ? std::string()
                                   : key.substr(key.find(':') + 1);
    if (param == "topology_nodes") {
      continue;  // applied above
    } else if (param == "host_speed_scale") {
      for (int h = 0; h < p.host_count(); ++h) {
        p.set_host_speed(h, p.host(h).speed_flops * value.as_number());
      }
    } else if (param == "link_bandwidth_scale") {
      for (int l = 0; l < p.link_count(); ++l) {
        p.set_link_bandwidth(l, p.link(l).bandwidth_bps * value.as_number());
      }
    } else if (param == "link_latency_scale") {
      for (int l = 0; l < p.link_count(); ++l) {
        p.set_link_latency(l, p.link(l).latency_s * value.as_number());
      }
    } else if (param == "host_speed") {
      const int host = p.find_host(target);
      SMPI_REQUIRE(host >= 0, "campaign override on nonexistent host '" + target + "'");
      p.set_host_speed(host, value.as_number());
    } else if (param == "link_bandwidth") {
      const int link = p.find_link(target);
      SMPI_REQUIRE(link >= 0, "campaign override on nonexistent link '" + target + "'");
      p.set_link_bandwidth(link, value.as_number());
    } else if (param == "link_latency") {
      const int link = p.find_link(target);
      SMPI_REQUIRE(link >= 0, "campaign override on nonexistent link '" + target + "'");
      p.set_link_latency(link, value.as_number());
    } else if (param == "cpu_scale") {
      config.cpu_scale = value.as_number();
      SMPI_REQUIRE(config.cpu_scale > 0, "cpu_scale must be > 0");
    } else if (param == "placement") {
      config.placement = build_placement(value.as_string(), nranks, p.host_count());
    } else if (param == "coll_bcast") {
      config.coll.bcast = value.as_string();
    } else if (param == "coll_alltoall") {
      config.coll.alltoall = value.as_string();
    } else if (param == "coll_allreduce") {
      config.coll.allreduce = value.as_string();
    } else if (param == "coll_allgather") {
      config.coll.allgather = value.as_string();
    } else if (param == "payload_free") {
      setup.payload_free = value.as_bool();
    } else if (param == "eager_threshold") {
      const double threshold = value.as_number();
      SMPI_REQUIRE(threshold >= 0, "eager_threshold must be >= 0");
      config.personality.eager_threshold = static_cast<std::uint64_t>(threshold);
    } else if (param == "overhead_send") {
      const double overhead = value.as_number();
      SMPI_REQUIRE(overhead >= 0, "overhead_send must be >= 0");
      config.personality.overhead_send_s = overhead;
    } else if (param == "overhead_recv") {
      const double overhead = value.as_number();
      SMPI_REQUIRE(overhead >= 0, "overhead_recv must be >= 0");
      config.personality.overhead_recv_s = overhead;
    } else if (param == "copy_cost") {
      const double cost = value.as_number();
      SMPI_REQUIRE(cost >= 0, "copy_cost must be >= 0");
      config.personality.copy_cost_s_per_byte = cost;
    } else if (param == "fault_seed") {
      SMPI_REQUIRE(config.faults.has_random,
                   "fault_seed needs a campaign-level 'faults' spec with a 'random' block");
      SMPI_REQUIRE(value.as_int() >= 0, "fault_seed must be >= 0");
      config.faults.random.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (param == "fault_time_scale") {
      const double scale = value.as_number();
      SMPI_REQUIRE(scale > 0, "fault_time_scale must be > 0");
      SMPI_REQUIRE(!config.faults.empty(),
                   "fault_time_scale needs a campaign-level 'faults' spec");
      for (auto& event : config.faults.events) event.time *= scale;
      config.faults.random.time_min *= scale;
      config.faults.random.time_max *= scale;
      config.faults.random.mttr *= scale;
    } else if (param == "noise_seed") {
      SMPI_REQUIRE(!spec.noise.empty(),
                   "noise_seed needs a campaign-level 'noise' spec");
      SMPI_REQUIRE(value.as_int() >= 0, "noise_seed must be >= 0");
      // Applied in the noise block after the loop.
    } else if (param == "fault_count_scale") {
      const double scale = value.as_number();
      SMPI_REQUIRE(scale >= 0, "fault_count_scale must be >= 0");
      SMPI_REQUIRE(config.faults.has_random,
                   "fault_count_scale needs a campaign-level 'faults' spec with a 'random' block");
      auto& random = config.faults.random;
      random.host_crashes = std::llround(static_cast<double>(random.host_crashes) * scale);
      random.link_failures = std::llround(static_cast<double>(random.link_failures) * scale);
      random.link_degradations =
          std::llround(static_cast<double>(random.link_degradations) * scale);
    } else if (is_workload_param(param)) {
      // Applied by the runner when it regenerates the trace; nothing to do
      // on the platform/config side.
      continue;
    } else {
      SMPI_REQUIRE(false, "campaign scenario: unknown param '" + param + "'");
    }
  }

  if (!spec.noise.empty()) {
    // Noise perturbs the scenario's platform as overridden above (the draws
    // are per-entity, so axis overrides and noise factors compose). The
    // replication index selects an independent sub-seed; a noise_seed axis
    // rebases the whole family.
    config.noise = spec.noise;
    if (const auto* seed = scenario.find("noise_seed")) {
      config.noise.seed = static_cast<std::uint64_t>(seed->as_int());
    }
    config.noise.seed = noise::replication_seed(config.noise.seed, replication);
    noise::apply_platform_noise(p, config.noise);
  }
  return setup;
}

bool has_workload_override(const Scenario& scenario) {
  for (const auto& [key, value] : scenario.params) {
    if (is_workload_param(key)) return true;
  }
  return false;
}

workload::WorkloadSpec apply_workload_overrides(const workload::WorkloadSpec& base,
                                                const Scenario& scenario) {
  workload::WorkloadSpec spec = base;
  for (const auto& [key, value] : scenario.params) {
    if (key == "workload_ranks") {
      spec.ranks = static_cast<int>(value.as_int());
      SMPI_REQUIRE(spec.ranks > 0, "workload_ranks must be > 0");
    } else if (key == "workload_seed") {
      SMPI_REQUIRE(value.as_int() >= 0, "workload_seed must be >= 0");
      spec.seed = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "workload_bytes") {
      const long long bytes = value.as_int();
      SMPI_REQUIRE(bytes >= 0, "workload_bytes must be >= 0");
      for (auto& phase : spec.phases) phase.bytes = {bytes};
    } else if (key == "workload_iterations") {
      const int iterations = static_cast<int>(value.as_int());
      SMPI_REQUIRE(iterations >= 1, "workload_iterations must be >= 1");
      for (auto& phase : spec.phases) phase.iterations = iterations;
    } else if (key == "workload_imbalance") {
      const double imbalance = value.as_number();
      SMPI_REQUIRE(imbalance >= 0 && imbalance < 1, "workload_imbalance must be in [0, 1)");
      for (auto& phase : spec.phases) phase.compute.imbalance = imbalance;
    }
  }
  // Contracts the parser enforced against the original rank count must
  // survive the override — an explicit grid that no longer tiles the ranks,
  // or a root/degree outside them, would generate an unreplayable trace.
  for (const auto& phase : spec.phases) {
    if (phase.px > 0) {
      const long long cells = static_cast<long long>(phase.px) * phase.py *
                              (phase.pz > 0 ? phase.pz : 1);
      SMPI_REQUIRE(cells == spec.ranks,
                   "workload_ranks: explicit process grid does not tile " +
                       std::to_string(spec.ranks) + " ranks");
    }
    SMPI_REQUIRE(phase.root < spec.ranks, "workload_ranks: phase root out of range");
    if (phase.pattern == workload::Pattern::kRandomSparse) {
      SMPI_REQUIRE(phase.degree < spec.ranks, "workload_ranks: degree must be < ranks");
    }
  }
  return spec;
}

}  // namespace smpi::campaign
