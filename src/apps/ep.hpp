// NAS Parallel Benchmarks "EP" (Embarrassingly Parallel) kernel (§7.3,
// Figure 18), rebuilt against smpi/mpi.h.
//
// Each process draws its block of the global NAS-LCG stream, generates
// pairs (x, y) uniform in (-1, 1), applies the Marsaglia polar method to
// obtain Gaussian deviates, and tallies them into ten concentric square
// annuli; a final MPI_Allreduce combines the sums and counts.
//
// The outer loop is chunked into `batches` equal CPU bursts wrapped in
// SMPI_SAMPLE_LOCAL, so a sampling ratio r executes only the first
// ceil(r * batches) bursts for real and replays the measured mean for the
// rest — the exact experiment of Figure 18.
#pragma once

#include <array>
#include <cstdint>

#include "smpi/smpi.hpp"

namespace smpi::apps {

struct EpParams {
  // Total pairs = 2^log2_pairs (the NAS "M"; class B is 30 — scale down for
  // packet-level ground-truth runs, identically on both sides).
  int log2_pairs = 20;
  int batches = 32;            // CPU bursts per process
  double sampling_ratio = 1;   // fraction of bursts executed for real
};

struct EpResult {
  double sum_x = 0;
  double sum_y = 0;
  std::array<long long, 10> annuli{};
  long long gaussian_pairs() const;
};

int ep_sample_budget(const EpParams& params);

// The MPI program; run with any process count that divides 2^log2_pairs.
// The reduced result is available from ep_last_result() afterwards.
core::MpiMain make_ep_app(const EpParams& params);
EpResult ep_last_result();

// Serial reference for verification (always executes everything).
EpResult ep_reference(const EpParams& params);

}  // namespace smpi::apps
