// NAS Parallel Benchmarks "DT" (Data Traffic) kernel (§7.1.4), rebuilt
// against smpi/mpi.h.
//
// DT streams feature arrays through a task graph, one MPI process per graph
// node:
//  * BH (Black Hole, Figure 13)  — layers of 4-to-1 comparators converging
//    into one sink: 16->4->1 for class A (21 processes), 32->8->2->1 for B
//    (43), 64->16->4->1 for C (85);
//  * WH (White Hole, Figure 14)  — the mirror image, one source fanning out
//    1->4->16 (21 processes for class A);
//  * SH (Shuffle)                — constant-width layers with a perfect
//    shuffle between them: 16x5 = 80 processes for A, 32x6 = 192 for B,
//    64x7 = 448 for C.
//
// Sources generate their feature array from the NAS 46-bit LCG; interior
// nodes average the arrays of their predecessors; sinks reduce to a
// checksum. A serial reference (dt_reference_checksum) verifies the MPI
// runs. `scale` shrinks the class's feature length so the packet-level
// ground-truth runs stay fast; it is applied identically on both sides of
// every comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "smpi/smpi.hpp"

namespace smpi::apps {

enum class DtGraph { kBlackHole, kWhiteHole, kShuffle };
enum class DtClass { kS, kW, kA, kB, kC };

const char* dt_graph_name(DtGraph graph);
char dt_class_name(DtClass cls);

// Number of MPI processes (graph nodes) — the paper's 21/43/85 and
// 80/192/448 figures.
int dt_process_count(DtGraph graph, DtClass cls);
// Feature array length (doubles) before scaling.
std::size_t dt_feature_elements(DtClass cls);

struct DtGraphSpec {
  std::vector<std::vector<int>> predecessors;  // per node
  std::vector<std::vector<int>> successors;
  std::vector<int> layer;  // 0 = sources
  int node_count() const { return static_cast<int>(predecessors.size()); }
  int source_count() const;
  int sink_count() const;
};

DtGraphSpec build_dt_graph(DtGraph graph, DtClass cls);

// Data volumes of the dataflow: what a node of `layer` holds, and what one
// edge leaving that layer carries (BH amplifies 4x per layer toward the
// sink, WH duplicates, SH splits — see dt.cpp).
std::size_t dt_node_elements(DtGraph graph, DtClass cls, int layer, std::size_t base_elements);
std::size_t dt_edge_elements(DtGraph graph, DtClass cls, int from_layer,
                             std::size_t base_elements);

struct DtParams {
  DtGraph graph = DtGraph::kWhiteHole;
  DtClass cls = DtClass::kS;
  double scale = 1.0;        // multiplies the feature length
  bool fold_memory = false;  // SMPI_SHARED_MALLOC for the feature arrays
  std::uint64_t seed_offset = 0;
  // Cost of the per-node stream processing, charged as user-supplied flops
  // (the paper's n=0 sampling mode, §3.1): sources pay len x cost to
  // generate, interior nodes (#inputs x len) x cost to filter/combine, sinks
  // len x cost to verify. This is where BH outweighs WH: its comparators
  // process four input streams each (Figure 15's gap).
  double flops_per_element = 30;

  std::size_t feature_length() const;
};

// The MPI program; run it with dt_process_count() processes. The sum of all
// sink checksums is available from dt_last_checksum() after the run.
core::MpiMain make_dt_app(const DtParams& params);
double dt_last_checksum();

// Serial execution of the same dataflow (no MPI), for verification.
double dt_reference_checksum(const DtParams& params);

}  // namespace smpi::apps
