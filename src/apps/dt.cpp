#include "apps/dt.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "smpi/mpi.h"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace smpi::apps {
namespace {

// Layer widths per graph/class. BH converges by factors of 4 down to one
// node, WH is the mirror image, SH keeps a constant width.
std::vector<int> layer_widths(DtGraph graph, DtClass cls) {
  const int index = static_cast<int>(cls);  // S=0 .. C=4
  switch (graph) {
    case DtGraph::kBlackHole: {
      std::vector<int> widths;
      for (int w = 4 << index; w > 1; w /= 4) widths.push_back(w);
      widths.push_back(1);
      return widths;
    }
    case DtGraph::kWhiteHole: {
      std::vector<int> widths = layer_widths(DtGraph::kBlackHole, cls);
      std::reverse(widths.begin(), widths.end());
      return widths;
    }
    case DtGraph::kShuffle: {
      const int width = 4 << index;
      return std::vector<int>(static_cast<std::size_t>(index) + 3, width);
    }
  }
  SMPI_UNREACHABLE("bad graph kind");
}

}  // namespace

const char* dt_graph_name(DtGraph graph) {
  switch (graph) {
    case DtGraph::kBlackHole:
      return "BH";
    case DtGraph::kWhiteHole:
      return "WH";
    case DtGraph::kShuffle:
      return "SH";
  }
  return "?";
}

char dt_class_name(DtClass cls) { return "SWABC"[static_cast<int>(cls)]; }

int dt_process_count(DtGraph graph, DtClass cls) {
  int total = 0;
  for (int w : layer_widths(graph, cls)) total += w;
  return total;
}

std::size_t dt_feature_elements(DtClass cls) {
  // NAS DT grows the payload by 8x per class, starting at 1728 doubles.
  std::size_t elements = 1728;
  for (int i = 0; i < static_cast<int>(cls); ++i) elements *= 8;
  return elements;
}

std::size_t DtParams::feature_length() const {
  auto scaled = static_cast<std::size_t>(
      std::llround(static_cast<double>(dt_feature_elements(cls)) * scale));
  if (scaled < 16) scaled = 16;
  return (scaled + 3) / 4 * 4;  // SH splits streams in four
}

std::size_t dt_node_elements(DtGraph graph, DtClass cls, int layer, std::size_t base_elements) {
  // The data a node holds after combining its inputs:
  //  BH — streams concatenate toward the sink (the "black hole" collects
  //       every source's data for verification): a node of layer l holds the
  //       data of all width(0)/width(l) sources that feed it;
  //  WH — each node filters one input and duplicates it: always L;
  //  SH — streams are redistributed, not amplified: always L.
  if (graph == DtGraph::kBlackHole) {
    const auto widths = layer_widths(graph, cls);
    return base_elements * static_cast<std::size_t>(widths.front() /
                                                    widths[static_cast<std::size_t>(layer)]);
  }
  return base_elements;
}

std::size_t dt_edge_elements(DtGraph graph, DtClass cls, int from_layer,
                             std::size_t base_elements) {
  switch (graph) {
    case DtGraph::kBlackHole:
      // The whole accumulated stream moves up.
      return dt_node_elements(graph, cls, from_layer, base_elements);
    case DtGraph::kWhiteHole:
      return base_elements;  // duplicated to every successor
    case DtGraph::kShuffle:
      return base_elements / 4;  // split across the four successors
  }
  SMPI_UNREACHABLE("bad graph kind");
}

int DtGraphSpec::source_count() const {
  int count = 0;
  for (const auto& preds : predecessors) {
    if (preds.empty()) ++count;
  }
  return count;
}

int DtGraphSpec::sink_count() const {
  int count = 0;
  for (const auto& succs : successors) {
    if (succs.empty()) ++count;
  }
  return count;
}

DtGraphSpec build_dt_graph(DtGraph graph, DtClass cls) {
  const auto widths = layer_widths(graph, cls);
  // Node ids are assigned layer by layer.
  std::vector<int> layer_start;
  int total = 0;
  for (int w : widths) {
    layer_start.push_back(total);
    total += w;
  }
  DtGraphSpec spec;
  spec.predecessors.resize(static_cast<std::size_t>(total));
  spec.successors.resize(static_cast<std::size_t>(total));
  spec.layer.resize(static_cast<std::size_t>(total));
  for (std::size_t l = 0; l < widths.size(); ++l) {
    for (int j = 0; j < widths[l]; ++j) {
      spec.layer[static_cast<std::size_t>(layer_start[l] + j)] = static_cast<int>(l);
    }
  }
  auto connect = [&spec](int from, int to) {
    spec.successors[static_cast<std::size_t>(from)].push_back(to);
    spec.predecessors[static_cast<std::size_t>(to)].push_back(from);
  };
  for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
    const int wa = widths[l];
    const int wb = widths[l + 1];
    const int a0 = layer_start[l];
    const int b0 = layer_start[l + 1];
    if (wb < wa) {
      // Converging (BH): node j of the next layer eats a contiguous group.
      const int fan = wa / wb;
      for (int j = 0; j < wa; ++j) connect(a0 + j, b0 + j / fan);
    } else if (wb > wa) {
      // Diverging (WH): node j of this layer feeds a contiguous group.
      const int fan = wb / wa;
      for (int j = 0; j < wb; ++j) connect(a0 + j / fan, b0 + j);
    } else {
      // Shuffle: 4 predecessors per node, perfect-shuffle pattern.
      for (int j = 0; j < wb; ++j) {
        for (int k = 0; k < 4; ++k) connect(a0 + (4 * j + k) % wa, b0 + j);
      }
    }
  }
  return spec;
}

namespace {

double g_last_checksum = 0;

void fill_source_features(std::uint64_t node, const DtParams& params, double* out,
                          std::size_t len) {
  util::NasLcg lcg(util::NasLcg::kDefaultSeed);
  lcg.skip((node + 1 + params.seed_offset) * 97);
  for (std::size_t i = 0; i < len; ++i) out[i] = lcg.randlc() - 0.5;
}

double checksum_features(const double* data, std::size_t len) {
  double sum = 0;
  for (std::size_t i = 0; i < len; ++i) sum += std::fabs(data[i]);
  return sum;
}

// What a node sends on the edge to its k-th successor.
const double* edge_payload(DtGraph graph, const double* features, std::size_t edge_len,
                           std::size_t successor_index) {
  if (graph == DtGraph::kShuffle) return features + successor_index * edge_len;
  (void)edge_len;
  return features;  // BH: the whole stream; WH: a duplicate of the stream
}

}  // namespace

double dt_last_checksum() { return g_last_checksum; }

core::MpiMain make_dt_app(const DtParams& params) {
  return [params](int /*argc*/, char** /*argv*/) {
    MPI_Init(nullptr, nullptr);
    int rank = -1, size = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    const DtGraphSpec spec = build_dt_graph(params.graph, params.cls);
    SMPI_REQUIRE(size == spec.node_count(), "DT needs one process per graph node");
    const std::size_t base = params.feature_length();
    const int my_layer = spec.layer[static_cast<std::size_t>(rank)];
    const std::size_t my_elements = dt_node_elements(params.graph, params.cls, my_layer, base);
    const std::size_t my_bytes = my_elements * sizeof(double);

    auto allocate = [&params](std::size_t bytes, const char* file, int line) -> double* {
      // RAM folding (§3.2) shares one buffer per call site across all ranks,
      // which wrecks the numeric result but preserves the communication
      // behaviour — exactly the paper's trade-off.
      return static_cast<double*>(params.fold_memory ? smpi_shared_malloc(bytes, file, line)
                                                     : smpi_malloc(bytes));
    };
    auto release = [&params](double* ptr) {
      if (params.fold_memory) {
        smpi_shared_free(ptr);
      } else {
        smpi_free(ptr);
      }
    };

    double* features = allocate(my_bytes, __FILE__, __LINE__);
    const auto& preds = spec.predecessors[static_cast<std::size_t>(rank)];
    const auto& succs = spec.successors[static_cast<std::size_t>(rank)];
    const double element_cost = params.flops_per_element;

    if (preds.empty()) {
      fill_source_features(static_cast<std::uint64_t>(rank), params, features, my_elements);
      smpi_execute_flops(static_cast<double>(my_elements) * element_cost);
    } else {
      // Receive every predecessor's stream directly into my buffer
      // (concatenated in predecessor order), then pay the filtering cost
      // (user-supplied flops — the paper's n = 0 sampling mode, §3.1).
      const std::size_t in_len = dt_edge_elements(params.graph, params.cls, my_layer - 1, base);
      SMPI_ENSURE(in_len * preds.size() == my_elements, "DT stream lengths out of balance");
      std::vector<MPI_Request> requests(preds.size());
      for (std::size_t p = 0; p < preds.size(); ++p) {
        MPI_Irecv(features + p * in_len, static_cast<int>(in_len), MPI_DOUBLE, preds[p], 0,
                  MPI_COMM_WORLD, &requests[p]);
      }
      MPI_Waitall(static_cast<int>(requests.size()), requests.data(), MPI_STATUSES_IGNORE);
      smpi_execute_flops(static_cast<double>(my_elements) * element_cost);
    }

    if (succs.empty()) {
      // Sink: verify (checksum) and reduce to the last rank.
      const double local = checksum_features(features, my_elements);
      smpi_execute_flops(static_cast<double>(my_elements) * element_cost);
      double total = 0;
      MPI_Reduce(&local, &total, 1, MPI_DOUBLE, MPI_SUM, size - 1, MPI_COMM_WORLD);
      if (rank == size - 1) g_last_checksum = total;
    } else {
      const std::size_t out_len = dt_edge_elements(params.graph, params.cls, my_layer, base);
      std::vector<MPI_Request> requests(succs.size());
      for (std::size_t s = 0; s < succs.size(); ++s) {
        MPI_Isend(edge_payload(params.graph, features, out_len, s), static_cast<int>(out_len),
                  MPI_DOUBLE, succs[s], 0, MPI_COMM_WORLD, &requests[s]);
      }
      MPI_Waitall(static_cast<int>(requests.size()), requests.data(), MPI_STATUSES_IGNORE);
      const double zero = 0;
      double ignored = 0;
      MPI_Reduce(&zero, &ignored, 1, MPI_DOUBLE, MPI_SUM, size - 1, MPI_COMM_WORLD);
    }

    release(features);
    MPI_Finalize();
  };
}

double dt_reference_checksum(const DtParams& params) {
  const DtGraphSpec spec = build_dt_graph(params.graph, params.cls);
  const std::size_t base = params.feature_length();
  std::vector<std::vector<double>> values(static_cast<std::size_t>(spec.node_count()));
  double checksum = 0;
  for (int node = 0; node < spec.node_count(); ++node) {
    const int layer = spec.layer[static_cast<std::size_t>(node)];
    auto& mine = values[static_cast<std::size_t>(node)];
    mine.resize(dt_node_elements(params.graph, params.cls, layer, base));
    const auto& preds = spec.predecessors[static_cast<std::size_t>(node)];
    if (preds.empty()) {
      fill_source_features(static_cast<std::uint64_t>(node), params, mine.data(), mine.size());
    } else {
      const std::size_t in_len = dt_edge_elements(params.graph, params.cls, layer - 1, base);
      for (std::size_t p = 0; p < preds.size(); ++p) {
        const auto& src = values[static_cast<std::size_t>(preds[p])];
        // Which slice of the predecessor's stream reaches me?
        const auto& pred_succs = spec.successors[static_cast<std::size_t>(preds[p])];
        std::size_t my_index = 0;
        for (std::size_t s = 0; s < pred_succs.size(); ++s) {
          if (pred_succs[s] == node) my_index = s;
        }
        const double* payload =
            params.graph == DtGraph::kShuffle ? src.data() + my_index * in_len : src.data();
        std::memcpy(mine.data() + p * in_len, payload, in_len * sizeof(double));
      }
    }
    if (spec.successors[static_cast<std::size_t>(node)].empty()) {
      checksum += checksum_features(mine.data(), mine.size());
    }
  }
  return checksum;
}

}  // namespace smpi::apps
