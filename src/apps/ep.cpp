#include "apps/ep.hpp"

#include <cmath>

#include "smpi/mpi.h"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace smpi::apps {
namespace {

EpResult g_last_result;

// Process `pairs` pairs starting at stream offset `first_pair`, accumulating
// into `result`. This is the real NAS EP inner loop (Marsaglia polar).
void ep_kernel(std::uint64_t first_pair, std::uint64_t pairs, EpResult* result) {
  util::NasLcg lcg;
  lcg.skip(2 * first_pair);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const double x = 2.0 * lcg.randlc() - 1.0;
    const double y = 2.0 * lcg.randlc() - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0 || t == 0.0) continue;
    const double factor = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * factor;
    const double gy = y * factor;
    const auto ring = static_cast<int>(std::max(std::fabs(gx), std::fabs(gy)));
    if (ring < 10) {
      result->annuli[static_cast<std::size_t>(ring)] += 1;
      result->sum_x += gx;
      result->sum_y += gy;
    }
  }
}

}  // namespace

long long EpResult::gaussian_pairs() const {
  long long total = 0;
  for (long long c : annuli) total += c;
  return total;
}

int ep_sample_budget(const EpParams& params) {
  SMPI_REQUIRE(params.sampling_ratio > 0 && params.sampling_ratio <= 1,
               "sampling ratio must be in (0, 1]");
  const int budget = static_cast<int>(std::ceil(params.sampling_ratio * params.batches));
  return budget < 1 ? 1 : budget;
}

EpResult ep_last_result() { return g_last_result; }

core::MpiMain make_ep_app(const EpParams& params) {
  return [params](int /*argc*/, char** /*argv*/) {
    MPI_Init(nullptr, nullptr);
    int rank = -1, size = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    const std::uint64_t total_pairs = 1ULL << params.log2_pairs;
    const std::uint64_t my_pairs = total_pairs / static_cast<std::uint64_t>(size);
    const std::uint64_t my_first = my_pairs * static_cast<std::uint64_t>(rank);
    const auto batches = static_cast<std::uint64_t>(params.batches);
    const std::uint64_t per_batch = my_pairs / batches;
    const int budget = ep_sample_budget(params);

    EpResult local;
    for (std::uint64_t b = 0; b < batches; ++b) {
      // The sampled CPU burst: executed for the first `budget` iterations,
      // then folded into the measured mean delay (§3.1). Folded batches do
      // not update `local` — EP's statistics tolerate it, which is why the
      // paper calls this acceptable for regular applications only.
      SMPI_SAMPLE_LOCAL(budget) {
        ep_kernel(my_first + b * per_batch, per_batch, &local);
      }
    }

    EpResult global;
    MPI_Allreduce(&local.sum_x, &global.sum_x, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    MPI_Allreduce(&local.sum_y, &global.sum_y, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    MPI_Allreduce(local.annuli.data(), global.annuli.data(), 10, MPI_LONG_LONG, MPI_SUM,
                  MPI_COMM_WORLD);
    if (rank == 0) g_last_result = global;
    MPI_Finalize();
  };
}

EpResult ep_reference(const EpParams& params) {
  EpResult result;
  ep_kernel(0, 1ULL << params.log2_pairs, &result);
  return result;
}

}  // namespace smpi::apps
