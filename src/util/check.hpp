// Contract-checking macros used across the library.
//
// SMPI_REQUIRE   — precondition on public API arguments; always on.
// SMPI_ENSURE    — internal invariant; always on (simulation correctness
//                  depends on these, the cost is negligible next to the model
//                  solvers).
// SMPI_UNREACHABLE — marks logically impossible paths.
//
// Failures throw smpi::util::ContractError so tests can assert on them and a
// simulation driver can report the offending call site.
#pragma once

#include <stdexcept>
#include <string>

namespace smpi::util {

class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void contract_failure(const char* kind, const char* expr, const char* file, int line,
                                   const std::string& message);

}  // namespace smpi::util

#define SMPI_REQUIRE(expr, msg)                                                      \
  do {                                                                               \
    if (!(expr)) ::smpi::util::contract_failure("precondition", #expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SMPI_ENSURE(expr, msg)                                                       \
  do {                                                                               \
    if (!(expr)) ::smpi::util::contract_failure("invariant", #expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SMPI_UNREACHABLE(msg) \
  ::smpi::util::contract_failure("unreachable", "unreachable", __FILE__, __LINE__, (msg))
