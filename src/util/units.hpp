// Unit parsing and formatting: byte sizes ("64KiB"), rates ("1Gbps",
// "125MBps"), durations ("50us"). Used by the platform XML parser and the
// bench table printers.
#pragma once

#include <cstdint>
#include <string>

namespace smpi::util {

// "64KiB" -> 65536; accepts B, KiB, MiB, GiB, KB, MB, GB (decimal) and bare
// numbers. Throws ContractError on malformed input.
std::uint64_t parse_bytes(const std::string& text);

// "1Gbps" (bits/s) or "125MBps" (bytes/s) -> bytes per second.
double parse_bandwidth(const std::string& text);

// "50us", "1.5ms", "2s" -> seconds.
double parse_duration(const std::string& text);

// "1Gf", "2.5Gf", "1e9f" -> flops (floating point operations).
double parse_flops(const std::string& text);

std::string format_bytes(std::uint64_t bytes);     // "4.0MiB"
std::string format_duration(double seconds);       // "1.234ms"
std::string format_rate(double bytes_per_second);  // "117.7MiB/s"

}  // namespace smpi::util
