#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace smpi::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SMPI_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SMPI_REQUIRE(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::FILE* out) const { std::fputs(to_string().c_str(), out); }

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, value);
  return buf;
}

}  // namespace smpi::util
