// Aligned ASCII table printer for the figure-reproduction benches: one row
// per x-value, one column per curve, so a bench's stdout is directly
// comparable to the paper's plotted series.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace smpi::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // All cells are strings; callers format numbers with the precision that
  // makes sense for their figure.
  void add_row(std::vector<std::string> cells);
  void print(std::FILE* out = stdout) const;
  std::string to_string() const;

  static std::string num(double value, int precision = 4);
  static std::string sci(double value, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smpi::util
