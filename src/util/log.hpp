// Minimal category-based logger.
//
// Each module declares a category once (SMPI_LOG_CATEGORY in one .cpp) and
// logs through SMPI_LOG_DEBUG/INFO/WARN. Thresholds are configured globally
// or per category from the SMPI_LOG environment variable, e.g.
//   SMPI_LOG=info            — everything at info
//   SMPI_LOG=warn,surf:debug — surf at debug, rest at warn
// Logging below the threshold costs one integer comparison.
#pragma once

#include <sstream>
#include <string>

namespace smpi::util {

enum class LogLevel { kDebug = 0, kVerbose = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

class LogCategory {
 public:
  explicit LogCategory(std::string name);

  bool enabled(LogLevel level) const { return level >= threshold_; }
  const std::string& name() const { return name_; }
  void set_threshold(LogLevel level) { threshold_ = level; }

  void emit(LogLevel level, const std::string& message) const;

 private:
  std::string name_;
  LogLevel threshold_;
};

// Parses a SMPI_LOG-style spec; exposed for tests.
LogLevel parse_log_level(const std::string& text);
LogLevel threshold_for_category(const std::string& category_name);

}  // namespace smpi::util

#define SMPI_LOG_CATEGORY(var, name) ::smpi::util::LogCategory var(name)
#define SMPI_LOG_EXTERNAL_CATEGORY(var) extern ::smpi::util::LogCategory var

#define SMPI_LOG_AT(cat, level, stream_expr)            \
  do {                                                  \
    if ((cat).enabled(level)) {                         \
      std::ostringstream smpi_log_os_;                  \
      smpi_log_os_ << stream_expr;                      \
      (cat).emit(level, smpi_log_os_.str());            \
    }                                                   \
  } while (0)

#define SMPI_LOG_DEBUG(cat, s) SMPI_LOG_AT(cat, ::smpi::util::LogLevel::kDebug, s)
#define SMPI_LOG_INFO(cat, s) SMPI_LOG_AT(cat, ::smpi::util::LogLevel::kInfo, s)
#define SMPI_LOG_WARN(cat, s) SMPI_LOG_AT(cat, ::smpi::util::LogLevel::kWarn, s)
#define SMPI_LOG_ERROR(cat, s) SMPI_LOG_AT(cat, ::smpi::util::LogLevel::kError, s)
