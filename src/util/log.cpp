#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace smpi::util {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    auto end = text.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

LogLevel parse_log_level(const std::string& text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "verbose") return LogLevel::kVerbose;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogLevel threshold_for_category(const std::string& category_name) {
  const char* spec = std::getenv("SMPI_LOG");
  LogLevel result = LogLevel::kWarn;
  if (spec == nullptr) return result;
  for (const auto& item : split(spec, ',')) {
    auto colon = item.find(':');
    if (colon == std::string::npos) {
      result = parse_log_level(item);
    } else if (item.substr(0, colon) == category_name) {
      return parse_log_level(item.substr(colon + 1));
    }
  }
  return result;
}

LogCategory::LogCategory(std::string name)
    : name_(std::move(name)), threshold_(threshold_for_category(name_)) {}

void LogCategory::emit(LogLevel level, const std::string& message) const {
  static const char* kLevelNames[] = {"DEBUG", "VERB ", "INFO ", "WARN ", "ERROR", "OFF  "};
  std::fprintf(stderr, "[%s/%s] %s\n", name_.c_str(), kLevelNames[static_cast<int>(level)],
               message.c_str());
}

}  // namespace smpi::util
