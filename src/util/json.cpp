#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace smpi::util {

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  char buf[64];
  if (d == static_cast<double>(static_cast<long long>(d)) && std::abs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", d);
  }
  v.text_ = buf;
  return v;
}

JsonValue JsonValue::number_text(std::string text) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = std::strtod(text.c_str(), nullptr);
  v.text_ = std::move(text);
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  SMPI_REQUIRE(is_bool(), "json value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  SMPI_REQUIRE(is_number(), "json value is not a number");
  return number_;
}

long long JsonValue::as_int() const {
  SMPI_REQUIRE(is_number(), "json value is not a number");
  const auto ll = static_cast<long long>(number_);
  SMPI_REQUIRE(static_cast<double>(ll) == number_, "json number is not an integer");
  return ll;
}

const std::string& JsonValue::as_string() const {
  SMPI_REQUIRE(is_string(), "json value is not a string");
  return text_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  SMPI_REQUIRE(is_array(), "json value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  SMPI_REQUIRE(is_object(), "json value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key, const std::string& context) const {
  const JsonValue* v = find(key);
  SMPI_REQUIRE(v != nullptr, context + ": missing key '" + key + "'");
  return *v;
}

JsonValue& JsonValue::append(JsonValue v) {
  SMPI_REQUIRE(is_array(), "append on a non-array json value");
  items_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  SMPI_REQUIRE(is_object(), "set on a non-object json value");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(v));
  return *this;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += text_; break;
    case Kind::kString: escape_into(out, text_); break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        if (pretty) newline_indent(out, indent, depth + 1);
        escape_into(out, members_[i].first);
        out += pretty ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (pretty) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& where) : text_(text), where_(where) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    int line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ContractError(where_ + ":" + std::to_string(line) + ":" + std::to_string(col) + ": " +
                        message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string_body());
      case 't':
        if (consume_literal("true")) return JsonValue::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs are out of scope).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string literal = text_.substr(start, pos_ - start);
    char* end = nullptr;
    std::strtod(literal.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number '" + literal + "'");
    }
    return JsonValue::number_text(literal);
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.append(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string_body();
      expect(':');
      if (out.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      out.set(key, parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  const std::string& where_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const std::string& where) {
  return Parser(text, where).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  SMPI_REQUIRE(in.good(), "cannot open json file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str(), path);
}

}  // namespace smpi::util
