#include "util/check.hpp"

#include <sstream>

namespace smpi::util {

void contract_failure(const char* kind, const char* expr, const char* file, int line,
                      const std::string& message) {
  std::ostringstream os;
  os << kind << " violated at " << file << ':' << line << ": (" << expr << ") — " << message;
  throw ContractError(os.str());
}

}  // namespace smpi::util
