// Statistics helpers used by the calibration fitter and the evaluation
// harnesses, including the paper's accuracy metric (§7.1):
//
//   LogErr = |ln X − ln R|            (symmetric, unlike relative error)
//   Err    = e^{LogErr} − 1           (back out of log space, a percentage)
//
// Aggregates of LogErr (mean, max) are what the paper quotes ("8.63% average
// error, worst case 27%").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smpi::util {

// |ln(x) - ln(r)|; requires x > 0 and r > 0.
double log_error(double experimental, double reference);

// e^logerr - 1, expressed as a fraction (0.0863 for "8.63%").
double log_error_as_fraction(double logerr);

struct ErrorSummary {
  double mean_log_error = 0;
  double max_log_error = 0;
  // Back out of log space.
  double mean_fraction() const;
  double max_fraction() const;
  std::size_t count = 0;
};

// Accumulates LogErr over (experimental, reference) pairs.
class ErrorAccumulator {
 public:
  void add(double experimental, double reference);
  ErrorSummary summary() const;

 private:
  double sum_ = 0;
  double max_ = 0;
  std::size_t count_ = 0;
};

struct RunningStats {
  void add(double x);
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

struct LinearFit {
  double intercept = 0;  // alpha
  double slope = 0;      // 1/beta when fitting time vs bytes
  double correlation = 0;
  std::size_t count = 0;
};

// Ordinary least squares of y on x over [first, last) indices of the vectors.
LinearFit linear_regression(const std::vector<double>& x, const std::vector<double>& y,
                            std::size_t first, std::size_t last);
LinearFit linear_regression(const std::vector<double>& x, const std::vector<double>& y);

// Pearson correlation coefficient over the full vectors.
double correlation(const std::vector<double>& x, const std::vector<double>& y);

double percentile(std::vector<double> values, double p);  // p in [0,100]

// Exact order-statistic quantile with linear interpolation between ranks
// (the "type 7" estimator R and numpy default to); q in [0, 1]. The sorted
// overload avoids the copy+sort when the caller already holds sorted data —
// the campaign aggregator calls it once per quantile per scenario.
double quantile(std::vector<double> values, double q);
double quantile_sorted(const std::vector<double>& sorted, double q);

// Percentile-bootstrap confidence interval on the mean: `resamples`
// with-replacement resamples of `values`, each mean recorded, the interval
// being the (alpha/2, 1-alpha/2) quantiles of those means. Seeded through
// the mix_stream discipline (one sub-stream per resample), so the interval
// is bit-reproducible per seed and independent of call order.
struct BootstrapCi {
  double lo = 0;
  double hi = 0;
};
BootstrapCi bootstrap_mean_ci(const std::vector<double>& values, double level, int resamples,
                              std::uint64_t seed);

// One-shot descriptive summary of a sample — what a campaign's replication
// fold-down reports per scenario. stddev is the sample (n-1) estimator,
// 0 for n < 2.
struct SampleSummary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  double p5 = 0;
  double p50 = 0;
  double p95 = 0;
};
SampleSummary summarize_sample(std::vector<double> values);

}  // namespace smpi::util
