// Deterministic random number generation.
//
// Two generators:
//  * Xoshiro256StarStar — general-purpose generator used by workload
//    generators and property tests (seeded, reproducible across platforms).
//  * NasLcg — the 48-bit linear congruential generator specified by the NAS
//    Parallel Benchmarks (a = 5^13, modulus 2^46), needed so our EP and DT
//    kernels produce the NAS reference streams.
#pragma once

#include <cstdint>

namespace smpi::util {

class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(std::uint64_t seed);

  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double next_double();
  // Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t next_in_range(std::uint64_t lo, std::uint64_t hi);

 private:
  std::uint64_t state_[4];
};

// NAS Parallel Benchmarks pseudo-random stream: x_{k+1} = a*x_k mod 2^46.
// randlc() returns x_{k+1} * 2^-46 in (0,1) and advances the state.
class NasLcg {
 public:
  static constexpr double kDefaultSeed = 314159265.0;
  static constexpr double kA = 1220703125.0;  // 5^13

  explicit NasLcg(double seed = kDefaultSeed) : x_(seed) {}

  double randlc();
  // Jump the stream forward: state := a^n * state mod 2^46, used by EP to give
  // every rank an independent block of the global stream.
  void skip(std::uint64_t n);
  double state() const { return x_; }

 private:
  double x_;
};

// t = a^n * seed mod 2^46 without advancing through all n steps (NAS ipow46).
double nas_lcg_power(double a, std::uint64_t n, double seed);

// ---------------------------------------------------------------------------
// Counter-seeded sub-streams
// ---------------------------------------------------------------------------
//
// Every stochastic subsystem (workload generator, fault model, noise model)
// follows one discipline: a consumer never shares a generator. Each draw
// site seeds its own Xoshiro from mix_stream(seed, stream_class, entity
// [, draw]), so adding or removing one distribution can never shift the
// draws another sees — the property all the bit-reproducibility tests rest
// on. The three seed *domains* are independent (a workload seed, a fault
// seed, and a noise seed never feed the same mix call), but the fixed
// stream-class numbers are kept globally disjoint anyway so a future merge
// of domains cannot silently collide:
//
//   0-15   fault model (fault_seed domain, sim/fault.cpp):
//            0 host crashes, 1 link failures, 2 link degradations
//   16-31  noise model (noise_seed domain, noise/noise.cpp):
//            16 host speed, 17 link bandwidth, 18 link latency,
//            19 per-message latency jitter, 20 replication sub-seeds
//   32+    reserved
//
// The workload generator (workload/patterns.cpp) derives its stream ids
// dynamically from the phase index (phase << 1 | kind); it is the sole
// occupant of the workload-seed domain, documented here for completeness.
std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t stream, std::uint64_t index);
// Four-level variant for per-draw streams (e.g. one draw per message).
std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t stream, std::uint64_t index,
                         std::uint64_t draw);

namespace stream_class {
// Fault model (fault_seed domain).
constexpr std::uint64_t kFaultHostCrash = 0;
constexpr std::uint64_t kFaultLinkFail = 1;
constexpr std::uint64_t kFaultLinkDegrade = 2;
// Noise model (noise_seed domain).
constexpr std::uint64_t kNoiseHostSpeed = 16;
constexpr std::uint64_t kNoiseLinkBandwidth = 17;
constexpr std::uint64_t kNoiseLinkLatency = 18;
constexpr std::uint64_t kNoiseMessageJitter = 19;
constexpr std::uint64_t kNoiseReplication = 20;
}  // namespace stream_class

}  // namespace smpi::util
