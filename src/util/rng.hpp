// Deterministic random number generation.
//
// Two generators:
//  * Xoshiro256StarStar — general-purpose generator used by workload
//    generators and property tests (seeded, reproducible across platforms).
//  * NasLcg — the 48-bit linear congruential generator specified by the NAS
//    Parallel Benchmarks (a = 5^13, modulus 2^46), needed so our EP and DT
//    kernels produce the NAS reference streams.
#pragma once

#include <cstdint>

namespace smpi::util {

class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(std::uint64_t seed);

  std::uint64_t next_u64();
  // Uniform in [0, 1).
  double next_double();
  // Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::uint64_t next_in_range(std::uint64_t lo, std::uint64_t hi);

 private:
  std::uint64_t state_[4];
};

// NAS Parallel Benchmarks pseudo-random stream: x_{k+1} = a*x_k mod 2^46.
// randlc() returns x_{k+1} * 2^-46 in (0,1) and advances the state.
class NasLcg {
 public:
  static constexpr double kDefaultSeed = 314159265.0;
  static constexpr double kA = 1220703125.0;  // 5^13

  explicit NasLcg(double seed = kDefaultSeed) : x_(seed) {}

  double randlc();
  // Jump the stream forward: state := a^n * state mod 2^46, used by EP to give
  // every rank an independent block of the global stream.
  void skip(std::uint64_t n);
  double state() const { return x_; }

 private:
  double x_;
};

// t = a^n * seed mod 2^46 without advancing through all n steps (NAS ipow46).
double nas_lcg_power(double a, std::uint64_t n, double seed);

}  // namespace smpi::util
