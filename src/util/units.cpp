#include "util/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace smpi::util {
namespace {

struct NumberSuffix {
  double value;
  std::string suffix;  // lower-cased, whitespace-stripped
};

NumberSuffix split_number(const std::string& text) {
  SMPI_REQUIRE(!text.empty(), "empty unit string");
  std::size_t pos = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  SMPI_REQUIRE(end != text.c_str(), "no numeric prefix in '" + text + "'");
  pos = static_cast<std::size_t>(end - text.c_str());
  std::string suffix;
  for (; pos < text.size(); ++pos) {
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) {
      suffix.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(text[pos]))));
    }
  }
  return {value, suffix};
}

}  // namespace

std::uint64_t parse_bytes(const std::string& text) {
  const auto [value, suffix] = split_number(text);
  double mult = 1;
  if (suffix.empty() || suffix == "b") {
    mult = 1;
  } else if (suffix == "kib") {
    mult = 1024.0;
  } else if (suffix == "mib") {
    mult = 1024.0 * 1024;
  } else if (suffix == "gib") {
    mult = 1024.0 * 1024 * 1024;
  } else if (suffix == "kb") {
    mult = 1e3;
  } else if (suffix == "mb") {
    mult = 1e6;
  } else if (suffix == "gb") {
    mult = 1e9;
  } else {
    SMPI_REQUIRE(false, "unknown byte suffix in '" + text + "'");
  }
  SMPI_REQUIRE(value >= 0, "negative byte count");
  return static_cast<std::uint64_t>(std::llround(value * mult));
}

double parse_bandwidth(const std::string& text) {
  const auto [value, suffix] = split_number(text);
  SMPI_REQUIRE(value >= 0, "negative bandwidth");
  if (suffix == "bps") return value / 8.0;
  if (suffix == "kbps") return value * 1e3 / 8.0;
  if (suffix == "mbps") return value * 1e6 / 8.0;
  if (suffix == "gbps") return value * 1e9 / 8.0;
  if (suffix.empty() || suffix == "bps" || suffix == "b/s") return value / 8.0;
  if (suffix == "byteps" || suffix == "bytes" ) return value;
  if (suffix == "kbyteps" || suffix == "kbps8") return value * 1e3;
  if (suffix == "kibps") return value * 1024.0;  // kibibytes/s (SimGrid-style)
  if (suffix == "mibps") return value * 1024.0 * 1024;
  if (suffix == "gibps") return value * 1024.0 * 1024 * 1024;
  if (suffix == "mbyteps") return value * 1e6;
  if (suffix == "gbyteps") return value * 1e9;
  SMPI_REQUIRE(false, "unknown bandwidth suffix in '" + text + "'");
  return 0;
}

double parse_duration(const std::string& text) {
  const auto [value, suffix] = split_number(text);
  SMPI_REQUIRE(value >= 0, "negative duration");
  if (suffix.empty() || suffix == "s") return value;
  if (suffix == "ms") return value * 1e-3;
  if (suffix == "us" || suffix == "µs") return value * 1e-6;
  if (suffix == "ns") return value * 1e-9;
  if (suffix == "min") return value * 60;
  SMPI_REQUIRE(false, "unknown duration suffix in '" + text + "'");
  return 0;
}

double parse_flops(const std::string& text) {
  const auto [value, suffix] = split_number(text);
  SMPI_REQUIRE(value >= 0, "negative flops");
  if (suffix.empty() || suffix == "f" || suffix == "flops") return value;
  if (suffix == "kf" || suffix == "kflops") return value * 1e3;
  if (suffix == "mf" || suffix == "mflops") return value * 1e6;
  if (suffix == "gf" || suffix == "gflops") return value * 1e9;
  if (suffix == "tf" || suffix == "tflops") return value * 1e12;
  SMPI_REQUIRE(false, "unknown flops suffix in '" + text + "'");
  return 0;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof buf, "%.1fGiB", b / (1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof buf, "%.1fMiB", b / (1ULL << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1fKiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3fms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3fus", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fns", seconds * 1e9);
  }
  return buf;
}

std::string format_rate(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= double{1ULL << 30}) {
    std::snprintf(buf, sizeof buf, "%.1fGiB/s", bytes_per_second / double{1ULL << 30});
  } else if (bytes_per_second >= double{1ULL << 20}) {
    std::snprintf(buf, sizeof buf, "%.1fMiB/s", bytes_per_second / double{1ULL << 20});
  } else if (bytes_per_second >= 1024.0) {
    std::snprintf(buf, sizeof buf, "%.1fKiB/s", bytes_per_second / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fB/s", bytes_per_second);
  }
  return buf;
}

}  // namespace smpi::util
