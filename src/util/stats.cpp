#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace smpi::util {

double log_error(double experimental, double reference) {
  SMPI_REQUIRE(experimental > 0 && reference > 0, "log error needs positive values");
  return std::fabs(std::log(experimental) - std::log(reference));
}

double log_error_as_fraction(double logerr) { return std::exp(logerr) - 1.0; }

double ErrorSummary::mean_fraction() const { return log_error_as_fraction(mean_log_error); }
double ErrorSummary::max_fraction() const { return log_error_as_fraction(max_log_error); }

void ErrorAccumulator::add(double experimental, double reference) {
  const double e = log_error(experimental, reference);
  sum_ += e;
  max_ = std::max(max_, e);
  ++count_;
}

ErrorSummary ErrorAccumulator::summary() const {
  ErrorSummary s;
  s.count = count_;
  s.max_log_error = max_;
  s.mean_log_error = count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  return n_ == 0 ? 0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit linear_regression(const std::vector<double>& x, const std::vector<double>& y,
                            std::size_t first, std::size_t last) {
  SMPI_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  SMPI_REQUIRE(first < last && last <= x.size(), "bad regression range");
  const auto n = static_cast<double>(last - first);
  double sx = 0, sy = 0;
  for (std::size_t i = first; i < last; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = first; i < last; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  LinearFit fit;
  fit.count = last - first;
  if (sxx == 0) {
    fit.slope = 0;
    fit.intercept = my;
    fit.correlation = 0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.correlation = (syy == 0) ? 1.0 : sxy / std::sqrt(sxx * syy);
  return fit;
}

LinearFit linear_regression(const std::vector<double>& x, const std::vector<double>& y) {
  return linear_regression(x, y, 0, x.size());
}

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  return linear_regression(x, y).correlation;
}

double percentile(std::vector<double> values, double p) {
  SMPI_REQUIRE(!values.empty(), "percentile of empty set");
  SMPI_REQUIRE(p >= 0 && p <= 100, "percentile out of range");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  SMPI_REQUIRE(!sorted.empty(), "quantile of empty set");
  SMPI_REQUIRE(q >= 0 && q <= 1, "quantile out of range");
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> values, double q) {
  SMPI_REQUIRE(!values.empty(), "quantile of empty set");
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

BootstrapCi bootstrap_mean_ci(const std::vector<double>& values, double level, int resamples,
                              std::uint64_t seed) {
  SMPI_REQUIRE(!values.empty(), "bootstrap of empty set");
  SMPI_REQUIRE(level > 0 && level < 1, "bootstrap level must be in (0, 1)");
  SMPI_REQUIRE(resamples >= 1, "bootstrap needs at least one resample");
  const auto n = values.size();
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    // One sub-stream per resample: inserting or removing a resample never
    // shifts the draws of the others.
    Xoshiro256StarStar rng(mix_stream(seed, 0, static_cast<std::uint64_t>(r)));
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += values[rng.next_in_range(0, static_cast<std::uint64_t>(n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double alpha = 1 - level;
  BootstrapCi ci;
  ci.lo = quantile_sorted(means, alpha / 2);
  ci.hi = quantile_sorted(means, 1 - alpha / 2);
  return ci;
}

SampleSummary summarize_sample(std::vector<double> values) {
  SMPI_REQUIRE(!values.empty(), "summary of empty sample");
  std::sort(values.begin(), values.end());
  SampleSummary s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  s.p5 = quantile_sorted(values, 0.05);
  s.p50 = quantile_sorted(values, 0.50);
  s.p95 = quantile_sorted(values, 0.95);
  return s;
}

}  // namespace smpi::util
