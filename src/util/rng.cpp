#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace smpi::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Multiply two doubles that encode 46-bit integers, modulo 2^46, using the
// NAS split-precision trick (exact in IEEE double arithmetic).
double mul_mod_46(double a, double x) {
  constexpr double r23 = 0x1p-23, t23 = 0x1p23;
  constexpr double r46 = 0x1p-46, t46 = 0x1p46;
  const double a1 = std::trunc(r23 * a);
  const double a2 = a - t23 * a1;
  const double x1 = std::trunc(r23 * x);
  const double x2 = x - t23 * x1;
  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = std::trunc(r23 * t1);
  const double z = t1 - t23 * t2;
  const double t3 = t23 * z + a2 * x2;
  const double t4 = std::trunc(r46 * t3);
  return t3 - t46 * t4;
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256StarStar::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256StarStar::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1p-53;
}

std::uint64_t Xoshiro256StarStar::next_in_range(std::uint64_t lo, std::uint64_t hi) {
  SMPI_REQUIRE(lo <= hi, "empty range");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  return lo + next_u64() % span;
}

double NasLcg::randlc() {
  x_ = mul_mod_46(kA, x_);
  return x_ * 0x1p-46;
}

void NasLcg::skip(std::uint64_t n) { x_ = nas_lcg_power(kA, n, x_); }

namespace {

// One combining level of sub-stream seeding: fold `v` into the running
// state, then run the SplitMix64 finalizer for a full avalanche. The weaker
// boost hash_combine step this replaced collided for adjacent small
// (stream, index) pairs — (s, i) vs (s+1, i-63) landed on the same seed —
// which the sub-stream independence test now guards against. Changing the
// constants or shift structure re-seeds every reproducible stream in the
// codebase — treat it as frozen.
std::uint64_t mix_step(std::uint64_t h, std::uint64_t v) {
  // xor-fold of an odd-multiplied v: an additive fold would alias
  // (h, v + 1) with (h + 1, v), i.e. seed 0 / stream s+1 with seed 1 /
  // stream s.
  std::uint64_t z = h ^ (v * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t stream, std::uint64_t index) {
  return mix_step(mix_step(seed, stream), index);
}

std::uint64_t mix_stream(std::uint64_t seed, std::uint64_t stream, std::uint64_t index,
                         std::uint64_t draw) {
  return mix_step(mix_stream(seed, stream, index), draw);
}

double nas_lcg_power(double a, std::uint64_t n, double seed) {
  double t = a;
  double result = seed;
  while (n != 0) {
    if (n & 1) result = mul_mod_46(t, result);
    t = mul_mod_46(t, t);
    n >>= 1;
  }
  return result;
}

}  // namespace smpi::util
