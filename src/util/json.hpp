// Minimal JSON support for the campaign subsystem: a dynamically-typed
// value, a recursive-descent parser with line-accurate errors, and a writer.
//
// This intentionally covers only what a campaign spec and a result capsule
// need — no comments, no NaN/Inf literals, UTF-8 passed through opaquely.
// Object keys keep insertion order so reports are stable and diffable.
// Numbers are stored as double plus the original text, which lets integral
// values round-trip without a float detour and lets result capsules carry
// %.17g doubles bit-exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace smpi::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  // Number with an exact textual form (e.g. "%.17g"-printed, or an integer).
  static JsonValue number_text(std::string text);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; throw ContractError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  long long as_int() const;  // requires an integral number
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;                         // array
  const std::vector<std::pair<std::string, JsonValue>>& members() const;  // object

  // Object lookup: nullptr when absent (or when this is not an object).
  const JsonValue* find(const std::string& key) const;
  // Object lookup that throws with `context` in the message when absent.
  const JsonValue& at(const std::string& key, const std::string& context) const;

  // Mutation (builder style).
  JsonValue& append(JsonValue v);                     // array
  JsonValue& set(const std::string& key, JsonValue v);  // object (insert or replace)

  // Serialization. `indent` < 0 emits the compact single-line form.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string text_;  // string payload, or the exact numeric literal
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses a complete JSON document (trailing garbage is an error). Throws
// ContractError with "<where>:line:col: message" on malformed input.
JsonValue parse_json(const std::string& text, const std::string& where = "json");
JsonValue parse_json_file(const std::string& path);

}  // namespace smpi::util
