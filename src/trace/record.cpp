#include "trace/record.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace smpi::trace {

namespace {

struct OpName {
  TiOp op;
  const char* name;
};

constexpr OpName kOpNames[] = {
    {TiOp::kInit, "init"},
    {TiOp::kFinalize, "finalize"},
    {TiOp::kCompute, "compute"},
    {TiOp::kSleep, "sleep"},
    {TiOp::kSend, "send"},
    {TiOp::kIsend, "isend"},
    {TiOp::kRecv, "recv"},
    {TiOp::kIrecv, "irecv"},
    {TiOp::kWait, "wait"},
    {TiOp::kWaitall, "waitall"},
    {TiOp::kReqFree, "reqfree"},
    {TiOp::kProbe, "probe"},
    {TiOp::kSendrecv, "sendrecv"},
    {TiOp::kBarrier, "barrier"},
    {TiOp::kBcast, "bcast"},
    {TiOp::kReduce, "reduce"},
    {TiOp::kAllreduce, "allreduce"},
    {TiOp::kScan, "scan"},
    {TiOp::kGather, "gather"},
    {TiOp::kGatherv, "gatherv"},
    {TiOp::kScatter, "scatter"},
    {TiOp::kScatterv, "scatterv"},
    {TiOp::kAllgather, "allgather"},
    {TiOp::kAllgatherv, "allgatherv"},
    {TiOp::kAlltoall, "alltoall"},
    {TiOp::kAlltoallv, "alltoallv"},
    {TiOp::kReduceScatter, "reducescatter"},
};

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), " %.17g", value);
  out += buf;
}

void append_ll(std::string& out, long long value) {
  out += ' ';
  out += std::to_string(value);
}

void append_list(std::string& out, const std::vector<long long>& values) {
  append_ll(out, static_cast<long long>(values.size()));
  for (long long v : values) append_ll(out, v);
}

bool read_ll(std::istringstream& in, long long* out) { return static_cast<bool>(in >> *out); }

bool read_list(std::istringstream& in, std::vector<long long>* out) {
  long long k = 0;
  if (!read_ll(in, &k) || k < 0) return false;
  out->resize(static_cast<std::size_t>(k));
  for (long long i = 0; i < k; ++i) {
    if (!read_ll(in, &(*out)[static_cast<std::size_t>(i)])) return false;
  }
  return true;
}

}  // namespace

const char* ti_op_name(TiOp op) {
  for (const auto& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "?";
}

bool ti_op_from_name(const std::string& name, TiOp* out) {
  for (const auto& entry : kOpNames) {
    if (name == entry.name) {
      *out = entry.op;
      return true;
    }
  }
  return false;
}

std::string serialize_record(const TiRecord& r) {
  std::string out = ti_op_name(r.op);
  switch (r.op) {
    case TiOp::kInit:
    case TiOp::kFinalize:
    case TiOp::kBarrier:
      break;
    case TiOp::kCompute:
    case TiOp::kSleep:
      append_double(out, r.value);
      break;
    case TiOp::kSend:
    case TiOp::kRecv:
      append_ll(out, r.peer);
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.tag);
      break;
    case TiOp::kIsend:
    case TiOp::kIrecv:
      append_ll(out, r.peer);
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.tag);
      append_ll(out, r.req);
      break;
    case TiOp::kWait:
    case TiOp::kReqFree:
      append_ll(out, r.req);
      break;
    case TiOp::kWaitall:
      append_list(out, r.reqs);
      break;
    case TiOp::kProbe:
      append_ll(out, r.peer);
      append_ll(out, r.tag);
      break;
    case TiOp::kSendrecv:
      append_ll(out, r.peer);
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.tag);
      append_ll(out, r.peer2);
      append_ll(out, r.count2);
      append_ll(out, r.elem2);
      append_ll(out, r.tag2);
      break;
    case TiOp::kBcast:
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.peer);
      break;
    case TiOp::kReduce:
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.peer);
      append_ll(out, r.commutative ? 1 : 0);
      break;
    case TiOp::kAllreduce:
    case TiOp::kScan:
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.commutative ? 1 : 0);
      break;
    case TiOp::kGather:
    case TiOp::kScatter:
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.count2);
      append_ll(out, r.elem2);
      append_ll(out, r.peer);
      break;
    case TiOp::kAllgather:
    case TiOp::kAlltoall:
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.count2);
      append_ll(out, r.elem2);
      break;
    case TiOp::kGatherv:
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.elem2);
      append_ll(out, r.peer);
      append_list(out, r.counts);
      break;
    case TiOp::kScatterv:
      append_ll(out, r.count2);
      append_ll(out, r.elem2);
      append_ll(out, r.elem);
      append_ll(out, r.peer);
      append_list(out, r.counts);
      break;
    case TiOp::kAllgatherv:
      append_ll(out, r.count);
      append_ll(out, r.elem);
      append_ll(out, r.elem2);
      append_list(out, r.counts);
      break;
    case TiOp::kAlltoallv:
      append_ll(out, r.elem);
      append_ll(out, r.elem2);
      append_list(out, r.counts);
      append_list(out, r.counts2);
      break;
    case TiOp::kReduceScatter:
      append_ll(out, r.elem);
      append_ll(out, r.commutative ? 1 : 0);
      append_list(out, r.counts);
      break;
  }
  return out;
}

bool parse_record(const std::string& line, TiRecord* out) {
  std::istringstream in(line);
  std::string name;
  if (!(in >> name)) return false;
  *out = TiRecord{};
  if (!ti_op_from_name(name, &out->op)) return false;
  long long flag = 1;
  switch (out->op) {
    case TiOp::kInit:
    case TiOp::kFinalize:
    case TiOp::kBarrier:
      return true;
    case TiOp::kCompute:
    case TiOp::kSleep:
      return static_cast<bool>(in >> out->value);
    case TiOp::kSend:
    case TiOp::kRecv:
      return read_ll(in, &out->peer) && read_ll(in, &out->count) && read_ll(in, &out->elem) &&
             read_ll(in, &out->tag);
    case TiOp::kIsend:
    case TiOp::kIrecv:
      return read_ll(in, &out->peer) && read_ll(in, &out->count) && read_ll(in, &out->elem) &&
             read_ll(in, &out->tag) && read_ll(in, &out->req);
    case TiOp::kWait:
    case TiOp::kReqFree:
      return read_ll(in, &out->req);
    case TiOp::kWaitall:
      return read_list(in, &out->reqs);
    case TiOp::kProbe:
      return read_ll(in, &out->peer) && read_ll(in, &out->tag);
    case TiOp::kSendrecv:
      return read_ll(in, &out->peer) && read_ll(in, &out->count) && read_ll(in, &out->elem) &&
             read_ll(in, &out->tag) && read_ll(in, &out->peer2) && read_ll(in, &out->count2) &&
             read_ll(in, &out->elem2) && read_ll(in, &out->tag2);
    case TiOp::kBcast:
      return read_ll(in, &out->count) && read_ll(in, &out->elem) && read_ll(in, &out->peer);
    case TiOp::kReduce:
      if (!(read_ll(in, &out->count) && read_ll(in, &out->elem) && read_ll(in, &out->peer) &&
            read_ll(in, &flag))) {
        return false;
      }
      out->commutative = flag != 0;
      return true;
    case TiOp::kAllreduce:
    case TiOp::kScan:
      if (!(read_ll(in, &out->count) && read_ll(in, &out->elem) && read_ll(in, &flag))) {
        return false;
      }
      out->commutative = flag != 0;
      return true;
    case TiOp::kGather:
    case TiOp::kScatter:
      return read_ll(in, &out->count) && read_ll(in, &out->elem) && read_ll(in, &out->count2) &&
             read_ll(in, &out->elem2) && read_ll(in, &out->peer);
    case TiOp::kAllgather:
    case TiOp::kAlltoall:
      return read_ll(in, &out->count) && read_ll(in, &out->elem) && read_ll(in, &out->count2) &&
             read_ll(in, &out->elem2);
    case TiOp::kGatherv:
      return read_ll(in, &out->count) && read_ll(in, &out->elem) && read_ll(in, &out->elem2) &&
             read_ll(in, &out->peer) && read_list(in, &out->counts);
    case TiOp::kScatterv:
      return read_ll(in, &out->count2) && read_ll(in, &out->elem2) && read_ll(in, &out->elem) &&
             read_ll(in, &out->peer) && read_list(in, &out->counts);
    case TiOp::kAllgatherv:
      return read_ll(in, &out->count) && read_ll(in, &out->elem) && read_ll(in, &out->elem2) &&
             read_list(in, &out->counts);
    case TiOp::kAlltoallv:
      return read_ll(in, &out->elem) && read_ll(in, &out->elem2) && read_list(in, &out->counts) &&
             read_list(in, &out->counts2);
    case TiOp::kReduceScatter:
      if (!(read_ll(in, &out->elem) && read_ll(in, &flag) && read_list(in, &out->counts))) {
        return false;
      }
      out->commutative = flag != 0;
      return true;
  }
  return false;
}

}  // namespace smpi::trace
