// Capture instrumentation bridge between the MPI implementation and the
// trace writers.
//
// At most one instrumentation set (TI writer and/or Paje writer) is active
// at a time, matching the one-SmpiWorld-at-a-time rule. The MPI entry points
// open an ApiScope; only the *outermost* scope on a rank records — the
// collectives, MPI_Finalize, MPI_Waitsome, ... are implemented on top of
// other MPI calls, and those inner calls must not be captured (the replay
// re-issues the outer operation through the very same implementation).
// MPI_Startall and the communicator-management calls deliberately open no
// scope: each inner MPI_Start records its own activation, and
// MPI_Comm_dup/split/free's internal world-comm allgather/barrier record as
// the plain collectives they are (on a *derived* parent communicator those
// inner collectives throw, like any derived-comm collective under capture).
//
// When nothing is installed (no writer and no obs::SpanCollector — the scope
// also feeds the span layer, see obs/span.hpp) the ApiScope constructor is
// two global loads and a branch, so uninstrumented runs pay nothing
// measurable per MPI call.
#pragma once

#include "trace/record.hpp"

namespace smpi::core {
class Process;
class Request;
}  // namespace smpi::core

namespace smpi::trace {

class TiWriter;
class PajeWriter;

// Install instrumentation for the next/current simulation. `ti` and `paje`
// may each be null; both null is equivalent to clear_capture(). The caller
// keeps ownership and must clear before destroying the writers.
void install_capture(TiWriter* ti, PajeWriter* paje);
void clear_capture();
bool capture_installed();

class ApiScope {
 public:
  // `state` is the Paje state name for this call (also pushed/popped).
  explicit ApiScope(const char* state);
  ~ApiScope();

  ApiScope(const ApiScope&) = delete;
  ApiScope& operator=(const ApiScope&) = delete;

  // True when this scope is the application-level call on this rank and a TI
  // writer is installed — i.e. emit() will actually record.
  bool recording() const { return recording_; }
  void emit(const TiRecord& record);

  // Capture-side request ids. register_request assigns the next id for this
  // rank and remembers the Request* -> id binding; lookup_request returns -1
  // for unknown requests and forgets the binding when erase is set (the
  // request has been consumed by a wait and its heap slot may be recycled).
  long long register_request(const core::Request* request);
  long long lookup_request(const core::Request* request, bool erase);

  // Simulated date at scope entry (for recording elapsed-time sleeps of
  // unsuccessful polls).
  double start_time() const { return start_time_; }

 private:
  core::Process* proc_ = nullptr;
  const char* state_;
  bool outer_ = false;
  bool recording_ = false;
  double start_time_ = 0;
};

}  // namespace smpi::trace
