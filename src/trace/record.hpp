// Time-independent (TI) trace records — the on-disk unit of the capture /
// offline-replay subsystem.
//
// A TI trace describes *what* an MPI rank did (compute this many flops, send
// this many bytes to that peer, enter this collective) but never *when*: all
// dates are recomputed by the simulator at replay time, which is what lets
// one captured run be re-simulated across arbitrary platform variants
// (the "sensibility analysis at scale" axis — capture once, re-simulate
// cheaply on any platform.xml).
//
// Traces are per-rank text files (`rank_<r>.ti`, one record per line) plus a
// `manifest.txt` naming the rank count; see docs/architecture.md for the
// full schema. Doubles are printed with %.17g so recorded flop counts
// round-trip bit-exactly — replay equivalence is asserted at 1e-9.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smpi::trace {

enum class TiOp {
  kInit,
  kFinalize,
  kCompute,
  kSleep,
  kSend,
  kIsend,
  kRecv,
  kIrecv,
  kWait,
  kWaitall,
  kReqFree,
  kProbe,
  kSendrecv,
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kScan,
  kGather,
  kGatherv,
  kScatter,
  kScatterv,
  kAllgather,
  kAllgatherv,
  kAlltoall,
  kAlltoallv,
  kReduceScatter,
};

// Peer / root / tag sentinels (world ranks are always >= 0).
constexpr long long kPeerAny = -1;   // MPI_ANY_SOURCE
constexpr long long kPeerNull = -2;  // MPI_PROC_NULL
constexpr long long kTagAny = -1;    // MPI_ANY_TAG

// One captured event. Field use by op:
//   compute/sleep     value = flops / seconds
//   send/recv (+i)    peer = world rank (or sentinel), count/elem = element
//                     count and size (bytes = count*elem; never flattened,
//                     so >2 GiB messages replay within int counts), tag,
//                     req = capture-side request id (nonblocking only)
//   wait/reqfree      req;  waitall: reqs
//   probe             peer, tag
//   sendrecv          peer/count/elem/tag = send side, *2 fields = recv
//   collectives       count/elem = send-side element count and size,
//                     count2/elem2 = recv side, peer = root,
//                     counts/counts2 = per-rank counts of the v-variants
//                     (empty on ranks that do not supply the array),
//                     commutative = reduction-op commutativity (drives the
//                     same algorithm dispatch the online run took)
struct TiRecord {
  TiOp op = TiOp::kInit;
  double value = 0;
  long long peer = 0;
  long long peer2 = 0;
  long long tag = 0;
  long long tag2 = 0;
  long long count = 0;
  long long count2 = 0;
  long long elem = 1;
  long long elem2 = 1;
  long long req = -1;
  bool commutative = true;
  std::vector<long long> reqs;
  std::vector<long long> counts;
  std::vector<long long> counts2;
};

// Op <-> token-name mapping (also the Paje state names).
const char* ti_op_name(TiOp op);
bool ti_op_from_name(const std::string& name, TiOp* out);

// One-line text form (no trailing newline) and its inverse. parse returns
// false on malformed input and leaves *out unspecified.
std::string serialize_record(const TiRecord& record);
bool parse_record(const std::string& line, TiRecord* out);

}  // namespace smpi::trace
