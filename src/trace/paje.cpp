#include "trace/paje.hpp"

#include "util/check.hpp"

namespace smpi::trace {

namespace {

// Minimal Paje event-definition header: container/state types plus the four
// event kinds we emit. Numeric aliases follow the ids Paje tools expect.
constexpr const char* kHeader =
    "%EventDef PajeDefineContainerType 0\n"
    "%       Alias string\n"
    "%       Type string\n"
    "%       Name string\n"
    "%EndEventDef\n"
    "%EventDef PajeDefineStateType 1\n"
    "%       Alias string\n"
    "%       Type string\n"
    "%       Name string\n"
    "%EndEventDef\n"
    "%EventDef PajeCreateContainer 2\n"
    "%       Time date\n"
    "%       Alias string\n"
    "%       Type string\n"
    "%       Container string\n"
    "%       Name string\n"
    "%EndEventDef\n"
    "%EventDef PajeDestroyContainer 3\n"
    "%       Time date\n"
    "%       Name string\n"
    "%       Type string\n"
    "%EndEventDef\n"
    "%EventDef PajePushState 4\n"
    "%       Time date\n"
    "%       Container string\n"
    "%       Type string\n"
    "%       Value string\n"
    "%EndEventDef\n"
    "%EventDef PajePopState 5\n"
    "%       Time date\n"
    "%       Container string\n"
    "%       Type string\n"
    "%EndEventDef\n";

}  // namespace

PajeWriter::PajeWriter(std::string path) : path_(std::move(path)) {}

// Abnormal-exit close: destroy the containers at the last emitted date so
// the partial timeline stays monotonically ordered and viewable.
PajeWriter::~PajeWriter() { finish(last_time_); }

void PajeWriter::begin(int nranks, double now) {
  SMPI_REQUIRE(!begun_, "paje writer already begun");
  SMPI_REQUIRE(nranks > 0, "paje writer needs at least one rank");
  file_ = std::fopen(path_.c_str(), "w");
  SMPI_ENSURE(file_ != nullptr, "cannot open paje trace file: " + path_);
  nranks_ = nranks;
  begun_ = true;
  std::fputs(kHeader, file_);
  std::fprintf(file_, "0 CT_Sim 0 \"Simulation\"\n");
  std::fprintf(file_, "0 CT_Proc CT_Sim \"MPI Process\"\n");
  std::fprintf(file_, "1 ST_MPI CT_Proc \"MPI_STATE\"\n");
  std::fprintf(file_, "2 %.9f sim CT_Sim 0 \"simulation\"\n", now);
  for (int rank = 0; rank < nranks_; ++rank) {
    std::fprintf(file_, "2 %.9f rank-%d CT_Proc sim \"rank-%d\"\n", now, rank, rank);
  }
}

void PajeWriter::push_state(int rank, const char* state, double now) {
  if (!begun_ || finished_) return;
  std::fprintf(file_, "4 %.9f rank-%d ST_MPI \"%s\"\n", now, rank, state);
  ++events_;
  if (now > last_time_) last_time_ = now;
}

void PajeWriter::pop_state(int rank, double now) {
  if (!begun_ || finished_) return;
  std::fprintf(file_, "5 %.9f rank-%d ST_MPI\n", now, rank);
  ++events_;
  if (now > last_time_) last_time_ = now;
}

void PajeWriter::finish(double now) {
  if (!begun_ || finished_) return;
  if (now < last_time_) now = last_time_;
  for (int rank = 0; rank < nranks_; ++rank) {
    std::fprintf(file_, "3 %.9f rank-%d CT_Proc\n", now, rank);
  }
  std::fprintf(file_, "3 %.9f sim CT_Sim\n", now);
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
}

}  // namespace smpi::trace
