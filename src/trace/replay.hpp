// Offline replay: re-simulate a captured TI trace on any platform.
//
// Each rank becomes a replay actor that walks its record list and re-issues
// the recorded operations through the ordinary MPI entry points, so the
// replayed traffic exercises the same collective algorithms, matching
// engine, and surf contention models as the online run — only the
// application code and its memory are gone. All payloads are served from
// one shared scratch arena (sized to the largest single operation, not to
// rank count x message size) and the world runs in payload-free mode, so a
// 1024-rank trace replays without allocating any per-rank application data.
// (Collective algorithms still allocate and copy their own internal staging
// buffers; gating those too is a further replay-speed lever — see ROADMAP.)
#pragma once

#include <cstdint>
#include <string>

#include "platform/platform.hpp"
#include "smpi/smpi.hpp"

namespace smpi::trace {

class PajeWriter;

struct ReplayOptions {
  // Optional time-stamped timeline of the replay (owned by the caller;
  // begin()/finish() are driven by replay_trace).
  PajeWriter* paje = nullptr;
};

struct ReplayResult {
  double simulated_time = 0;
  long long records = 0;
  int ranks = 0;
  std::uint64_t arena_bytes = 0;
};

// Loads `<trace_dir>` and re-simulates it over `platform`. `config` should
// match the capture run's model configuration (network model, personality);
// payload_free is forced on. Throws util::ContractError on a bad trace.
ReplayResult replay_trace(const platform::Platform& platform, core::SmpiConfig config,
                          const std::string& trace_dir, const ReplayOptions& options = {});

}  // namespace smpi::trace
