// Offline replay: re-simulate a captured TI trace on any platform.
//
// Each rank becomes a replay actor that walks its record list and re-issues
// the recorded operations through the ordinary MPI entry points, so the
// replayed traffic exercises the same collective algorithms, matching
// engine, and surf contention models as the online run — only the
// application code and its memory are gone. All payloads are served from
// one shared scratch arena (sized to the largest single operation, not to
// rank count x message size) and the world runs in payload-free mode, so a
// 1024-rank trace replays without allocating any per-rank application data.
// Collective algorithms also skip their internal staging buffers in this
// mode (see coll.cpp) — a replay moves no payload bytes at all.
//
// The trace-taking overload is the unit the campaign engine multiplies: a
// what-if sweep loads the trace once, then replays the same immutable
// TiTrace under many platform/config variants (one fresh SmpiWorld per
// scenario, so re-entry is clean by construction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "platform/platform.hpp"
#include "smpi/smpi.hpp"
#include "surf/maxmin.hpp"

namespace smpi::obs {
class ResourceCollector;
}

namespace smpi::trace {

class PajeWriter;
struct TiTrace;

struct ReplayOptions {
  // Optional time-stamped timeline of the replay (owned by the caller;
  // begin()/finish() are driven by replay_trace).
  PajeWriter* paje = nullptr;
  // Pre-computed compute_arena_bytes(trace) result; 0 = compute here. A
  // campaign scans the trace once instead of once per scenario.
  long long arena_bytes_hint = 0;
  // Replay in payload-free mode (the default, and the point of the
  // subsystem). false re-enables every payload copy — simulated time is
  // identical, only the replay's wall-clock cost changes, which makes it a
  // campaign axis for measuring what payload-free buys.
  bool payload_free = true;
  // Collect per-op spans during the replay and run the wait-state /
  // critical-path analysis over them (ReplayResult::analysis). Off by
  // default: with analyze off the replay takes the exact same simulated-time
  // trajectory and the span hooks reduce to a global load + branch.
  bool analyze = false;
  // Resource-utilization observability (caller-owned, like `paje`): when
  // non-null the collector is installed around the replay world, the surf
  // models register their links/hosts and push exact utilization snapshots
  // at every settle, and ReplayResult's bottleneck summary fields are filled
  // from it. The collector is finalized (intervals closed at the makespan)
  // before replay_trace returns. Null keeps the solver's changed-tracking
  // off — simulated times and solver counters are bit-identical.
  obs::ResourceCollector* resources = nullptr;
};

// Simulated-time split of one rank's replay: time inside compute/sleep
// records vs. time inside communication records (sends, receives, waits,
// collectives — i.e. blocked on the network or on peers).
struct RankUsage {
  double compute_s = 0;
  double comm_s = 0;
  long long records = 0;
  // Filled only when ReplayOptions::analyze is on: comm_s split into time
  // truly blocked on a peer (wait_s) vs. time the wire was busy
  // (transfer_s). In that mode compute_s/comm_s are re-derived from the
  // span layer, which fixes the attribution of overlapped nonblocking
  // operations — a transfer that progressed underneath a compute record no
  // longer has its MPI_Wait charged as if the whole interval were
  // communication.
  double wait_s = 0;
  double transfer_s = 0;
};

struct ReplayResult {
  double simulated_time = 0;
  long long records = 0;
  int ranks = 0;
  // Set when a rank aborted the replay (MPI_Abort, or a resource failure
  // under the fault model's abort policy). `failure` carries the first
  // fault diagnostic when the abort came from the failure model.
  bool aborted = false;
  int abort_code = 0;
  std::string failure;
  std::uint64_t arena_bytes = 0;
  std::vector<RankUsage> rank_usage;  // indexed by world rank
  // Cumulative solver work over the whole replay (network + cpu systems);
  // zero under the packet backend.
  std::uint64_t solver_solves = 0;
  std::uint64_t solver_vars_touched = 0;
  std::uint64_t solver_cons_touched = 0;
  // Hot-path accounting: free-list pool effectiveness and zero-copy eager
  // activity (see core::P2pCounters). In payload-free replay the eager
  // copy counters stay zero by construction — no payload moves at all.
  core::P2pCounters p2p;
  // Wait-state / critical-path analysis of this replay; only meaningful
  // when `analyzed` is set (ReplayOptions::analyze was on).
  bool analyzed = false;
  obs::AnalysisResult analysis;
  // Resource-utilization summary (ReplayOptions::resources): the dominant
  // bottleneck by saturated time (empty name: nothing ever saturated) and
  // the peak link utilization across the run. Only meaningful when
  // `resources_analyzed` is set; the full timelines and saturation ledger
  // stay on the caller's collector.
  bool resources_analyzed = false;
  std::string top_bottleneck;
  double bottleneck_saturated_s = 0;
  double max_link_utilization = 0;
  // surf.* observation counters summed over the network and CPU solvers
  // (always filled; feeds obs::collect_surf).
  surf::MaxMinSystem::ObserveCounters surf_observe;
};

// Size of the shared scratch arena a replay of `trace` needs: the largest
// buffer any single recorded operation may span.
long long compute_arena_bytes(const TiTrace& trace);

// Loads `<trace_dir>` and re-simulates it over `platform`. `config` should
// match the capture run's model configuration (network model, personality);
// config.payload_free is overridden by options.payload_free (on by
// default). Throws util::ContractError on a bad trace.
ReplayResult replay_trace(const platform::Platform& platform, core::SmpiConfig config,
                          const std::string& trace_dir, const ReplayOptions& options = {});

// Same, over an already-loaded trace (re-enterable: call as many times as
// you like, with any platform/config per call).
ReplayResult replay_trace(const platform::Platform& platform, core::SmpiConfig config,
                          const TiTrace& trace, const ReplayOptions& options = {});

}  // namespace smpi::trace
