#include "trace/writer.hpp"

#include <cstdio>
#include <filesystem>

#include "util/check.hpp"

namespace smpi::trace {

TiWriter::TiWriter(std::string dir, int nranks, std::string app)
    : dir_(std::move(dir)), nranks_(nranks), app_(std::move(app)) {
  SMPI_REQUIRE(nranks_ > 0, "trace writer needs at least one rank");
  std::filesystem::create_directories(dir_);
  buffers_.resize(static_cast<std::size_t>(nranks_));
  truncated_.resize(static_cast<std::size_t>(nranks_), false);
}

TiWriter::~TiWriter() { finish(); }

std::string TiWriter::rank_path(int rank) const {
  return dir_ + "/rank_" + std::to_string(rank) + ".ti";
}

void TiWriter::append(int rank, const TiRecord& record) {
  SMPI_REQUIRE(rank >= 0 && rank < nranks_, "trace record for out-of-range rank");
  SMPI_REQUIRE(!finished_, "trace writer already finished");
  auto& buffer = buffers_[static_cast<std::size_t>(rank)];
  buffer += serialize_record(record);
  buffer += '\n';
  ++records_;
  if (buffer.size() >= kFlushBytes) flush_rank(rank);
}

void TiWriter::flush_rank(int rank) {
  auto& buffer = buffers_[static_cast<std::size_t>(rank)];
  const bool first = !truncated_[static_cast<std::size_t>(rank)];
  if (buffer.empty() && !first) return;
  std::FILE* f = std::fopen(rank_path(rank).c_str(), first ? "w" : "a");
  SMPI_ENSURE(f != nullptr, "cannot open trace file for writing");
  truncated_[static_cast<std::size_t>(rank)] = true;
  if (!buffer.empty()) {
    std::fwrite(buffer.data(), 1, buffer.size(), f);
    buffer.clear();
  }
  std::fclose(f);
}

void TiWriter::finish() {
  if (finished_) return;
  for (int rank = 0; rank < nranks_; ++rank) flush_rank(rank);
  const std::string manifest = dir_ + "/manifest.txt";
  std::FILE* f = std::fopen(manifest.c_str(), "w");
  SMPI_ENSURE(f != nullptr, "cannot write trace manifest");
  std::fprintf(f, "smpi-ti 1\nranks %d\napp %s\n", nranks_, app_.c_str());
  std::fclose(f);
  finished_ = true;
}

}  // namespace smpi::trace
