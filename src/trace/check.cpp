#include "trace/check.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "trace/reader.hpp"

namespace smpi::trace {

namespace {

bool is_collective(TiOp op) {
  switch (op) {
    case TiOp::kBarrier:
    case TiOp::kBcast:
    case TiOp::kReduce:
    case TiOp::kAllreduce:
    case TiOp::kScan:
    case TiOp::kGather:
    case TiOp::kGatherv:
    case TiOp::kScatter:
    case TiOp::kScatterv:
    case TiOp::kAllgather:
    case TiOp::kAllgatherv:
    case TiOp::kAlltoall:
    case TiOp::kAlltoallv:
    case TiOp::kReduceScatter:
      return true;
    default:
      return false;
  }
}

// Per-destination p2p accounting. Exact buckets are (source, tag); wildcard
// receives are only tallied (they can absorb anything, so per-bucket
// comparison is off for ranks that post them).
struct RankTraffic {
  std::map<std::pair<long long, long long>, long long> sends_in;   // (src, tag) -> count
  std::map<std::pair<long long, long long>, long long> recvs;      // exact receives
  long long wildcard_recvs = 0;  // ANY_SOURCE and/or ANY_TAG
  long long total_in = 0;        // messages peers send to this rank
  long long total_recvs = 0;     // receives this rank posts
};

std::string plural(long long n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

TraceCheckReport check_trace(const TiTrace& trace) {
  TraceCheckReport report;
  const int nranks = trace.nranks;
  auto in_world = [nranks](long long rank) { return rank >= 0 && rank < nranks; };

  std::vector<RankTraffic> traffic(static_cast<std::size_t>(nranks));
  std::vector<std::vector<TiOp>> collectives(static_cast<std::size_t>(nranks));

  for (int rank = 0; rank < nranks; ++rank) {
    for (const TiRecord& r : trace.ranks[static_cast<std::size_t>(rank)]) {
      const bool send_side = r.op == TiOp::kSend || r.op == TiOp::kIsend ||
                             r.op == TiOp::kSendrecv;
      const bool recv_side = r.op == TiOp::kRecv || r.op == TiOp::kIrecv;
      if (send_side && r.peer != kPeerNull) {
        if (!in_world(r.peer)) {
          report.findings.push_back(
              {rank, "rank " + std::to_string(rank) + ": " + ti_op_name(r.op) +
                         " targets rank " + std::to_string(r.peer) + " outside the " +
                         std::to_string(nranks) + "-rank trace"});
        } else {
          RankTraffic& dst = traffic[static_cast<std::size_t>(r.peer)];
          ++dst.sends_in[{rank, r.tag}];
          ++dst.total_in;
        }
      }
      if ((recv_side && r.peer != kPeerNull) ||
          (r.op == TiOp::kSendrecv && r.peer2 != kPeerNull)) {
        const long long src = r.op == TiOp::kSendrecv ? r.peer2 : r.peer;
        const long long tag = r.op == TiOp::kSendrecv ? r.tag2 : r.tag;
        RankTraffic& self = traffic[static_cast<std::size_t>(rank)];
        if (src == kPeerAny || tag == kTagAny) {
          ++self.wildcard_recvs;
        } else if (!in_world(src)) {
          report.findings.push_back(
              {rank, "rank " + std::to_string(rank) + ": receive from rank " +
                         std::to_string(src) + " outside the " + std::to_string(nranks) +
                         "-rank trace"});
        } else {
          ++self.recvs[{src, tag}];
        }
        ++self.total_recvs;
      }
      if (is_collective(r.op)) {
        collectives[static_cast<std::size_t>(rank)].push_back(r.op);
      }
    }
  }

  // p2p balance. The aggregate check is always sound; the per-(source, tag)
  // breakdown only when the rank posted no wildcard receives.
  for (int rank = 0; rank < nranks; ++rank) {
    const RankTraffic& t = traffic[static_cast<std::size_t>(rank)];
    if (t.total_in != t.total_recvs) {
      report.findings.push_back(
          {rank, "rank " + std::to_string(rank) + ": peers send " +
                     plural(t.total_in, "message") + " but it posts " +
                     plural(t.total_recvs, "receive")});
    }
    if (t.wildcard_recvs > 0) continue;
    for (const auto& [key, sent] : t.sends_in) {
      const auto it = t.recvs.find(key);
      const long long received = it == t.recvs.end() ? 0 : it->second;
      if (sent > received) {
        report.findings.push_back(
            {rank, "rank " + std::to_string(rank) + ": " +
                       plural(sent - received, "message") + " from rank " +
                       std::to_string(key.first) + " tag " + std::to_string(key.second) +
                       " without a matching receive"});
      }
    }
    for (const auto& [key, received] : t.recvs) {
      const auto it = t.sends_in.find(key);
      const long long sent = it == t.sends_in.end() ? 0 : it->second;
      if (received > sent) {
        report.findings.push_back(
            {rank, "rank " + std::to_string(rank) + ": " +
                       plural(received - sent, "receive") + " from rank " +
                       std::to_string(key.first) + " tag " + std::to_string(key.second) +
                       " without a matching send"});
      }
    }
  }

  // Collectives: every rank must enter the same ops in the same order —
  // rank 0 is the reference, divergences are reported at the first index.
  for (int rank = 1; rank < nranks; ++rank) {
    const auto& reference = collectives[0];
    const auto& mine = collectives[static_cast<std::size_t>(rank)];
    if (mine.size() != reference.size()) {
      report.findings.push_back(
          {rank, "rank " + std::to_string(rank) + ": enters " +
                     plural(static_cast<long long>(mine.size()), "collective") +
                     " but rank 0 enters " +
                     std::to_string(reference.size())});
    }
    const std::size_t common = std::min(mine.size(), reference.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (mine[i] == reference[i]) continue;
      report.findings.push_back(
          {rank, "rank " + std::to_string(rank) + ": collective #" + std::to_string(i) +
                     " is " + ti_op_name(mine[i]) + " but rank 0 enters " +
                     ti_op_name(reference[i])});
      break;  // everything after the first divergence is noise
    }
  }
  return report;
}

}  // namespace smpi::trace
