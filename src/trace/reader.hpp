// TI trace loader: manifest + per-rank record vectors, parsed upfront so the
// replay actors run a plain in-memory cursor (no IO inside the simulation).
#pragma once

#include <string>
#include <vector>

#include "trace/record.hpp"

namespace smpi::trace {

struct TiTrace {
  int nranks = 0;
  std::string app;
  std::vector<std::vector<TiRecord>> ranks;  // ranks[r] = rank r's records, in order

  long long total_records() const {
    long long total = 0;
    for (const auto& r : ranks) total += static_cast<long long>(r.size());
    return total;
  }
};

// Throws util::ContractError on a missing/malformed trace. By default the
// trace is also validated structurally — every rank file present, starting
// with init and ending with finalize — so an interrupted capture is rejected
// up front (with rank, path, line) instead of deadlocking a replay.
// `validate = false` loads whatever is there (ti_inspect uses it to diagnose
// exactly such broken traces).
TiTrace load_ti_trace(const std::string& dir, bool validate = true);

}  // namespace smpi::trace
