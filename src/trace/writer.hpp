// Buffered per-rank TI trace writer.
//
// Capture happens on the simulation's hot path (every MPI call emits one
// record), so records are serialized into an in-memory buffer per rank and
// flushed to `<dir>/rank_<r>.ti` only when the buffer exceeds a threshold —
// capture must never add a syscall per MPI call. finish() flushes every
// buffer and writes `<dir>/manifest.txt`; the destructor calls it if the
// caller forgot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace smpi::trace {

class TiWriter {
 public:
  // Creates `dir` (and parents) if needed; truncates any previous trace for
  // the same rank count.
  TiWriter(std::string dir, int nranks, std::string app = "app");
  ~TiWriter();

  TiWriter(const TiWriter&) = delete;
  TiWriter& operator=(const TiWriter&) = delete;

  void append(int rank, const TiRecord& record);
  // Flush all buffers and write the manifest. Idempotent.
  void finish();

  int nranks() const { return nranks_; }
  const std::string& dir() const { return dir_; }
  std::uint64_t records_written() const { return records_; }

 private:
  static constexpr std::size_t kFlushBytes = 1 << 20;

  std::string rank_path(int rank) const;
  void flush_rank(int rank);

  std::string dir_;
  int nranks_;
  std::string app_;
  std::vector<std::string> buffers_;
  std::vector<bool> truncated_;  // first flush truncates, later ones append
  std::uint64_t records_ = 0;
  bool finished_ = false;
};

}  // namespace smpi::trace
