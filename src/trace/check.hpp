// Static TI-trace sanity checks — catch traces that would deadlock a replay
// before burning a simulation on them.
//
// A TI trace is only replayable when its ranks agree with each other: every
// point-to-point send needs a receive on the destination rank (and vice
// versa), and every rank must enter the same collectives in the same order.
// A hand-edited or truncated trace that violates this replays into a
// simulated deadlock; `check_trace` finds the disagreement by counting, with
// no simulation at all.
//
// Wildcard receives (MPI_ANY_SOURCE / MPI_ANY_TAG) can match any send, so a
// rank that posts them only gets the aggregate send/receive balance checked
// — flagging a specific (source, tag) bucket would be a false positive.
#pragma once

#include <string>
#include <vector>

namespace smpi::trace {

struct TiTrace;

struct TraceFinding {
  int rank = -1;  // the rank the finding anchors to (-1 = trace-wide)
  std::string message;
};

struct TraceCheckReport {
  std::vector<TraceFinding> findings;
  bool ok() const { return findings.empty(); }
};

// Pure record-counting pass over the loaded trace; safe on traces loaded
// with validate = false (ti_inspect's lenient mode).
TraceCheckReport check_trace(const TiTrace& trace);

}  // namespace smpi::trace
