// Paje-format timeline export (the visualization side of the trace
// subsystem). Unlike the TI capture this trace *is* time-stamped: every
// application-level MPI call pushes/pops an "MPI_STATE" interval on its
// rank's container at the engine dates the call starts and completes, so the
// file can be opened in Paje viewers (ViTE and friends) to see per-rank
// activity over simulated time. Works identically during online runs and
// offline replays — the replay actor issues the same MPI calls.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace smpi::trace {

class PajeWriter {
 public:
  explicit PajeWriter(std::string path);
  ~PajeWriter();

  PajeWriter(const PajeWriter&) = delete;
  PajeWriter& operator=(const PajeWriter&) = delete;

  // Writes the event-definition header and one container per rank.
  void begin(int nranks, double now = 0);
  void push_state(int rank, const char* state, double now);
  void pop_state(int rank, double now);
  // Destroys the containers and closes the file. Idempotent.
  void finish(double now);

  bool begun() const { return begun_; }
  std::uint64_t events() const { return events_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  int nranks_ = 0;
  bool begun_ = false;
  bool finished_ = false;
  std::uint64_t events_ = 0;
  double last_time_ = 0;  // Paje requires non-decreasing event dates
};

}  // namespace smpi::trace
