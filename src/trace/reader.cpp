#include "trace/reader.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace smpi::trace {

TiTrace load_ti_trace(const std::string& dir, bool validate) {
  TiTrace trace;
  {
    std::ifstream manifest(dir + "/manifest.txt");
    SMPI_REQUIRE(manifest.good(), "trace manifest not found: " + dir + "/manifest.txt");
    std::string magic;
    int version = 0;
    manifest >> magic >> version;
    SMPI_REQUIRE(magic == "smpi-ti" && version == 1, "unsupported trace format");
    std::string key;
    while (manifest >> key) {
      if (key == "ranks") {
        manifest >> trace.nranks;
      } else if (key == "app") {
        manifest >> trace.app;
      } else {
        std::string ignored;
        std::getline(manifest, ignored);
      }
    }
    SMPI_REQUIRE(trace.nranks > 0, "trace manifest has no ranks");
  }

  trace.ranks.resize(static_cast<std::size_t>(trace.nranks));
  for (int rank = 0; rank < trace.nranks; ++rank) {
    const std::string path = dir + "/rank_" + std::to_string(rank) + ".ti";
    std::ifstream in(path);
    SMPI_REQUIRE(in.good(), "trace file missing for rank " + std::to_string(rank) + ": " + path +
                                " (manifest declares " + std::to_string(trace.nranks) +
                                " ranks)");
    auto& records = trace.ranks[static_cast<std::size_t>(rank)];
    std::string line;
    long long line_no = 0;
    long long last_record_line = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      TiRecord record;
      SMPI_REQUIRE(parse_record(line, &record),
                   "malformed trace record at " + path + ":" + std::to_string(line_no) + ": " +
                       line);
      last_record_line = line_no;
      records.push_back(std::move(record));
    }
    // Structural validation, up front: a replay of a trace that stops short
    // of finalize deadlocks deep inside the simulation (peers wait on
    // messages that are never re-issued), so reject it here with the rank,
    // the path, and where the file ends.
    if (!validate) continue;
    SMPI_REQUIRE(!records.empty(),
                 "trace for rank " + std::to_string(rank) + " is empty: " + path);
    SMPI_REQUIRE(records.front().op == TiOp::kInit,
                 "trace for rank " + std::to_string(rank) + " does not start with init: " + path +
                     " (first record '" + ti_op_name(records.front().op) + "')");
    SMPI_REQUIRE(records.back().op == TiOp::kFinalize,
                 "trace for rank " + std::to_string(rank) + " is truncated: " + path +
                     " ends at line " + std::to_string(last_record_line) + " with '" +
                     ti_op_name(records.back().op) +
                     "' (expected finalize — was the capture interrupted?)");
  }
  return trace;
}

}  // namespace smpi::trace
