#include "trace/capture.hpp"

#include <unordered_map>
#include <vector>

#include "obs/span.hpp"
#include "smpi/internals.hpp"
#include "trace/paje.hpp"
#include "trace/writer.hpp"
#include "util/check.hpp"

namespace smpi::trace {

namespace {

struct Instrumentation {
  TiWriter* ti = nullptr;
  PajeWriter* paje = nullptr;
  // Request* -> capture id, per rank. Request objects are pooled and their
  // addresses recycled after GC, so bindings are erased when consumed.
  std::vector<std::unordered_map<const core::Request*, long long>> request_ids;
  std::vector<long long> request_seq;
};

Instrumentation g_instr;

core::Process* capture_process() {
  core::SmpiWorld* world = core::SmpiWorld::instance();
  return world == nullptr ? nullptr : world->current_process();
}

}  // namespace

void install_capture(TiWriter* ti, PajeWriter* paje) {
  g_instr.ti = ti;
  g_instr.paje = paje;
  g_instr.request_ids.clear();
  g_instr.request_seq.clear();
  if (ti != nullptr) {
    g_instr.request_ids.resize(static_cast<std::size_t>(ti->nranks()));
    g_instr.request_seq.resize(static_cast<std::size_t>(ti->nranks()), 0);
  }
}

void clear_capture() { install_capture(nullptr, nullptr); }

bool capture_installed() { return g_instr.ti != nullptr || g_instr.paje != nullptr; }

ApiScope::ApiScope(const char* state) : state_(state) {
  if (!capture_installed() && !obs::spans_enabled()) return;
  proc_ = capture_process();
  if (proc_ == nullptr) return;  // MPI call outside a rank: let the callee complain
  outer_ = ++proc_->trace_depth == 1;
  recording_ = outer_ && g_instr.ti != nullptr;
  start_time_ = proc_->world->engine().now();
  if (outer_) {
    if (g_instr.paje != nullptr) {
      g_instr.paje->push_state(proc_->world_rank, state_, start_time_);
    }
    if (obs::spans_enabled()) {
      obs::spans()->on_enter(proc_->world_rank, state_, start_time_);
    }
  }
}

ApiScope::~ApiScope() {
  if (proc_ == nullptr) return;
  if (outer_) {
    if (g_instr.paje != nullptr) {
      g_instr.paje->pop_state(proc_->world_rank, proc_->world->engine().now());
    }
    if (obs::spans_enabled()) {
      obs::spans()->on_exit(proc_->world_rank, proc_->world->engine().now());
    }
  }
  --proc_->trace_depth;
}

void ApiScope::emit(const TiRecord& record) {
  if (!recording_) return;
  g_instr.ti->append(proc_->world_rank, record);
}

long long ApiScope::register_request(const core::Request* request) {
  if (!recording_ || request == nullptr) return -1;
  const auto rank = static_cast<std::size_t>(proc_->world_rank);
  const long long id = g_instr.request_seq[rank]++;
  g_instr.request_ids[rank][request] = id;
  return id;
}

long long ApiScope::lookup_request(const core::Request* request, bool erase) {
  if (!recording_ || request == nullptr) return -1;
  const auto rank = static_cast<std::size_t>(proc_->world_rank);
  auto& ids = g_instr.request_ids[rank];
  auto it = ids.find(request);
  if (it == ids.end()) return -1;
  const long long id = it->second;
  if (erase) ids.erase(it);
  return id;
}

}  // namespace smpi::trace
