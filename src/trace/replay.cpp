#include "trace/replay.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/resource.hpp"
#include "obs/span.hpp"
#include "smpi/internals.hpp"
#include "smpi/mpi.h"
#include "surf/cpu.hpp"
#include "surf/network.hpp"
#include "trace/capture.hpp"
#include "trace/paje.hpp"
#include "trace/reader.hpp"
#include "util/check.hpp"

namespace smpi::trace {

namespace {

long long sum_counts(const std::vector<long long>& counts) {
  long long total = 0;
  for (long long c : counts) total += c;
  return total;
}

// Largest buffer any pointer passed for this record may span. Payload-free
// mode never copies message data, but collective algorithms still stage
// their *own* rank's block through the user buffers, so those must be real
// memory of the logical size.
long long record_arena_need(const TiRecord& r, int ranks) {
  const long long n = ranks;
  switch (r.op) {
    case TiOp::kSend:
    case TiOp::kIsend:
    case TiOp::kRecv:
    case TiOp::kIrecv:
      return r.count * r.elem;
    case TiOp::kSendrecv:
      return std::max(r.count * r.elem, r.count2 * r.elem2);
    case TiOp::kBcast:
    case TiOp::kReduce:
    case TiOp::kAllreduce:
    case TiOp::kScan:
      return r.count * r.elem;
    case TiOp::kGather:
      return std::max(r.count * r.elem, n * r.count2 * r.elem2);
    case TiOp::kScatter:
      return std::max(n * r.count * r.elem, r.count2 * r.elem2);
    case TiOp::kAllgather:
      return std::max(r.count * r.elem, n * r.count2 * r.elem2);
    case TiOp::kAlltoall:
      return n * std::max(r.count * r.elem, r.count2 * r.elem2);
    case TiOp::kGatherv:
      return std::max(r.count * r.elem, sum_counts(r.counts) * r.elem2);
    case TiOp::kScatterv:
      return std::max(sum_counts(r.counts) * r.elem, r.count2 * r.elem2);
    case TiOp::kAllgatherv:
      return std::max(r.count * r.elem, sum_counts(r.counts) * r.elem2);
    case TiOp::kAlltoallv:
      return std::max(sum_counts(r.counts) * r.elem, sum_counts(r.counts2) * r.elem2);
    case TiOp::kReduceScatter:
      return sum_counts(r.counts) * r.elem;
    default:
      return 0;
  }
}

int as_int(long long value) {
  SMPI_REQUIRE(value >= std::numeric_limits<int>::min() &&
                   value <= std::numeric_limits<int>::max(),
               "trace value does not fit in int");
  return static_cast<int>(value);
}

int decode_rank(long long peer) {
  if (peer == kPeerNull) return MPI_PROC_NULL;
  if (peer == kPeerAny) return MPI_ANY_SOURCE;
  return as_int(peer);
}

int decode_tag(long long tag) { return tag == kTagAny ? MPI_ANY_TAG : as_int(tag); }

std::vector<int> to_ints(const std::vector<long long>& values) {
  std::vector<int> out;
  out.reserve(values.size());
  for (long long v : values) out.push_back(as_int(v));
  return out;
}

std::vector<int> prefix_displs(const std::vector<int>& counts) {
  std::vector<int> displs(counts.size());
  int offset = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    displs[i] = offset;
    offset += counts[i];
  }
  return displs;
}

// Non-commutative reductions only need the *shape* of the online dispatch;
// the reduction itself costs no simulated time, so the body is empty.
void replay_reduce_stub(void* /*in*/, void* /*inout*/, int* /*len*/, MPI_Datatype* /*type*/) {}

void replay_rank(const TiTrace& trace, std::vector<unsigned char>& arena,
                 std::vector<RankUsage>& usage) {
  core::SmpiWorld* world = core::SmpiWorld::instance();
  const int rank = world->current_process()->world_rank;
  const auto& records = trace.ranks[static_cast<std::size_t>(rank)];
  unsigned char* base = arena.data();
  RankUsage& my_usage = usage[static_cast<std::size_t>(rank)];
  const sim::Engine& engine = world->engine();

  std::unordered_map<long long, MPI_Request> requests;
  std::unordered_map<long long, MPI_Datatype> types;
  MPI_Op noncommutative = MPI_OP_NULL;

  auto type_of = [&types](long long elem) -> MPI_Datatype {
    if (elem <= 1) return MPI_BYTE;
    auto it = types.find(elem);
    if (it != types.end()) return it->second;
    MPI_Datatype type = MPI_DATATYPE_NULL;
    SMPI_ENSURE(MPI_Type_contiguous(as_int(elem), MPI_BYTE, &type) == MPI_SUCCESS,
                "replay datatype creation failed");
    MPI_Type_commit(&type);
    types.emplace(elem, type);
    return type;
  };
  auto op_of = [&noncommutative](bool commutative) -> MPI_Op {
    if (commutative) return MPI_BOR;
    if (noncommutative == MPI_OP_NULL) {
      SMPI_ENSURE(MPI_Op_create(&replay_reduce_stub, 0, &noncommutative) == MPI_SUCCESS,
                  "replay op creation failed");
    }
    return noncommutative;
  };
  auto take_request = [&requests](long long id) -> MPI_Request {
    auto it = requests.find(id);
    SMPI_REQUIRE(it != requests.end(), "trace waits on unknown request id");
    MPI_Request handle = it->second;
    requests.erase(it);
    return handle;
  };
  auto check = [](int rc) { SMPI_ENSURE(rc == MPI_SUCCESS, "replayed MPI call failed"); };

  for (const TiRecord& r : records) {
    const double record_start = engine.now();
    switch (r.op) {
      case TiOp::kInit:
        check(MPI_Init(nullptr, nullptr));
        break;
      case TiOp::kFinalize:
        check(MPI_Finalize());
        break;
      case TiOp::kCompute:
        smpi_execute_flops(r.value);
        break;
      case TiOp::kSleep:
        smpi_sleep(r.value);
        break;
      case TiOp::kSend:
        check(MPI_Send(base, as_int(r.count), type_of(r.elem), decode_rank(r.peer),
                       decode_tag(r.tag), MPI_COMM_WORLD));
        break;
      case TiOp::kRecv:
        check(MPI_Recv(base, as_int(r.count), type_of(r.elem), decode_rank(r.peer),
                       decode_tag(r.tag), MPI_COMM_WORLD, MPI_STATUS_IGNORE));
        break;
      case TiOp::kIsend: {
        MPI_Request handle = MPI_REQUEST_NULL;
        check(MPI_Isend(base, as_int(r.count), type_of(r.elem), decode_rank(r.peer),
                        decode_tag(r.tag), MPI_COMM_WORLD, &handle));
        requests[r.req] = handle;
        break;
      }
      case TiOp::kIrecv: {
        MPI_Request handle = MPI_REQUEST_NULL;
        check(MPI_Irecv(base, as_int(r.count), type_of(r.elem), decode_rank(r.peer),
                        decode_tag(r.tag), MPI_COMM_WORLD, &handle));
        requests[r.req] = handle;
        break;
      }
      case TiOp::kWait: {
        MPI_Request handle = take_request(r.req);
        check(MPI_Wait(&handle, MPI_STATUS_IGNORE));
        break;
      }
      case TiOp::kWaitall:
        for (long long id : r.reqs) {
          MPI_Request handle = take_request(id);
          check(MPI_Wait(&handle, MPI_STATUS_IGNORE));
        }
        break;
      case TiOp::kReqFree: {
        MPI_Request handle = take_request(r.req);
        check(MPI_Request_free(&handle));
        break;
      }
      case TiOp::kProbe:
        check(MPI_Probe(decode_rank(r.peer), decode_tag(r.tag), MPI_COMM_WORLD,
                        MPI_STATUS_IGNORE));
        break;
      case TiOp::kSendrecv:
        check(MPI_Sendrecv(base, as_int(r.count), type_of(r.elem), decode_rank(r.peer),
                           decode_tag(r.tag), base, as_int(r.count2), type_of(r.elem2),
                           decode_rank(r.peer2), decode_tag(r.tag2), MPI_COMM_WORLD,
                           MPI_STATUS_IGNORE));
        break;
      case TiOp::kBarrier:
        check(MPI_Barrier(MPI_COMM_WORLD));
        break;
      case TiOp::kBcast:
        check(MPI_Bcast(base, as_int(r.count), type_of(r.elem), as_int(r.peer), MPI_COMM_WORLD));
        break;
      case TiOp::kReduce:
        check(MPI_Reduce(base, base, as_int(r.count), type_of(r.elem), op_of(r.commutative),
                         as_int(r.peer), MPI_COMM_WORLD));
        break;
      case TiOp::kAllreduce:
        check(MPI_Allreduce(base, base, as_int(r.count), type_of(r.elem), op_of(r.commutative),
                            MPI_COMM_WORLD));
        break;
      case TiOp::kScan:
        check(MPI_Scan(base, base, as_int(r.count), type_of(r.elem), op_of(r.commutative),
                       MPI_COMM_WORLD));
        break;
      case TiOp::kGather:
        check(MPI_Gather(base, as_int(r.count), type_of(r.elem), base, as_int(r.count2),
                         type_of(r.elem2), as_int(r.peer), MPI_COMM_WORLD));
        break;
      case TiOp::kScatter:
        check(MPI_Scatter(base, as_int(r.count), type_of(r.elem), base, as_int(r.count2),
                          type_of(r.elem2), as_int(r.peer), MPI_COMM_WORLD));
        break;
      case TiOp::kAllgather:
        check(MPI_Allgather(base, as_int(r.count), type_of(r.elem), base, as_int(r.count2),
                            type_of(r.elem2), MPI_COMM_WORLD));
        break;
      case TiOp::kAlltoall:
        check(MPI_Alltoall(base, as_int(r.count), type_of(r.elem), base, as_int(r.count2),
                           type_of(r.elem2), MPI_COMM_WORLD));
        break;
      case TiOp::kGatherv: {
        if (r.counts.empty()) {  // non-root: the array stays with the root
          check(MPI_Gatherv(base, as_int(r.count), type_of(r.elem), nullptr, nullptr, nullptr,
                            type_of(r.elem2), as_int(r.peer), MPI_COMM_WORLD));
        } else {
          const std::vector<int> counts = to_ints(r.counts);
          const std::vector<int> displs = prefix_displs(counts);
          check(MPI_Gatherv(base, as_int(r.count), type_of(r.elem), base, counts.data(),
                            displs.data(), type_of(r.elem2), as_int(r.peer), MPI_COMM_WORLD));
        }
        break;
      }
      case TiOp::kScatterv: {
        if (r.counts.empty()) {
          check(MPI_Scatterv(nullptr, nullptr, nullptr, type_of(r.elem), base, as_int(r.count2),
                             type_of(r.elem2), as_int(r.peer), MPI_COMM_WORLD));
        } else {
          const std::vector<int> counts = to_ints(r.counts);
          const std::vector<int> displs = prefix_displs(counts);
          check(MPI_Scatterv(base, counts.data(), displs.data(), type_of(r.elem), base,
                             as_int(r.count2), type_of(r.elem2), as_int(r.peer),
                             MPI_COMM_WORLD));
        }
        break;
      }
      case TiOp::kAllgatherv: {
        const std::vector<int> counts = to_ints(r.counts);
        const std::vector<int> displs = prefix_displs(counts);
        check(MPI_Allgatherv(base, as_int(r.count), type_of(r.elem), base, counts.data(),
                             displs.data(), type_of(r.elem2), MPI_COMM_WORLD));
        break;
      }
      case TiOp::kAlltoallv: {
        const std::vector<int> scounts = to_ints(r.counts);
        const std::vector<int> sdispls = prefix_displs(scounts);
        const std::vector<int> rcounts = to_ints(r.counts2);
        const std::vector<int> rdispls = prefix_displs(rcounts);
        check(MPI_Alltoallv(base, scounts.data(), sdispls.data(), type_of(r.elem), base,
                            rcounts.data(), rdispls.data(), type_of(r.elem2), MPI_COMM_WORLD));
        break;
      }
      case TiOp::kReduceScatter: {
        const std::vector<int> counts = to_ints(r.counts);
        check(MPI_Reduce_scatter(base, base, counts.data(), type_of(r.elem),
                                 op_of(r.commutative), MPI_COMM_WORLD));
        break;
      }
    }
    // Per-rank simulated-time breakdown: compute/sleep records burn local
    // time, everything else is communication (including the waiting).
    const double elapsed = engine.now() - record_start;
    if (r.op == TiOp::kCompute || r.op == TiOp::kSleep) {
      my_usage.compute_s += elapsed;
    } else {
      my_usage.comm_s += elapsed;
    }
    ++my_usage.records;
  }
}

}  // namespace

long long compute_arena_bytes(const TiTrace& trace) {
  long long arena_bytes = 1;
  for (const auto& rank_records : trace.ranks) {
    for (const TiRecord& r : rank_records) {
      arena_bytes = std::max(arena_bytes, record_arena_need(r, trace.nranks));
    }
  }
  return arena_bytes;
}

ReplayResult replay_trace(const platform::Platform& platform, core::SmpiConfig config,
                          const TiTrace& trace, const ReplayOptions& options) {
  // Pre-size the shared arena before any actor runs: growing it mid-run
  // would move memory out from under a suspended rank's collective.
  const long long arena_bytes =
      options.arena_bytes_hint > 0 ? options.arena_bytes_hint : compute_arena_bytes(trace);
  auto arena = std::make_shared<std::vector<unsigned char>>(
      static_cast<std::size_t>(arena_bytes));
  auto usage = std::make_shared<std::vector<RankUsage>>(
      static_cast<std::size_t>(trace.nranks));

  config.payload_free = options.payload_free;
  // The resource collector must be live *before* the world is built: the
  // surf models register their links/hosts and enable the solver's
  // changed-tracking in their constructors.
  if (options.resources != nullptr) obs::install_resources(options.resources);
  core::SmpiWorld world(platform, config);
  std::unique_ptr<obs::SpanCollector> spans;
  if (options.analyze) {
    spans = std::make_unique<obs::SpanCollector>(trace.nranks);
    obs::install_spans(spans.get());
  }
  if (options.paje != nullptr) {
    install_capture(nullptr, options.paje);
    options.paje->begin(trace.nranks);
  }
  try {
    world.run(trace.nranks,
              [&trace, arena, usage](int, char**) { replay_rank(trace, *arena, *usage); }, {},
              "ti-replay:" + trace.app);
  } catch (...) {
    // Never leave the global instrumentation dangling onto the caller-owned
    // writer/collector (or this frame's span collector) once this frame
    // unwinds.
    if (options.paje != nullptr) clear_capture();
    if (spans != nullptr) obs::clear_spans();
    if (options.resources != nullptr) obs::clear_resources();
    throw;
  }
  if (options.paje != nullptr) {
    clear_capture();
    options.paje->finish(world.simulated_time());
  }
  if (spans != nullptr) obs::clear_spans();
  if (options.resources != nullptr) {
    // Final drain: the last completions' usage drops may still sit in the
    // solvers' changed sets (no settle runs after the last event).
    if (auto* net = dynamic_cast<surf::FlowNetworkModel*>(&world.network())) {
      net->flush_observations(world.simulated_time());
    }
    if (auto* cpu = dynamic_cast<surf::CpuModel*>(&world.cpu())) {
      cpu->flush_observations(world.simulated_time());
    }
    obs::clear_resources();
    options.resources->finalize(world.simulated_time());
  }

  ReplayResult result;
  result.simulated_time = world.simulated_time();
  result.records = trace.total_records();
  result.ranks = trace.nranks;
  result.aborted = world.aborted();
  result.abort_code = world.abort_code();
  result.failure = world.failure_diagnostic();
  result.arena_bytes = static_cast<std::uint64_t>(arena_bytes);
  result.rank_usage = std::move(*usage);
  auto add_observe = [&result](const surf::MaxMinSystem::ObserveCounters& oc) {
    result.surf_observe.solves_attach += oc.solves_attach;
    result.surf_observe.solves_release += oc.solves_release;
    result.surf_observe.solves_capacity += oc.solves_capacity;
    result.surf_observe.solves_bound += oc.solves_bound;
    result.surf_observe.saturation_events += oc.saturation_events;
    result.surf_observe.observe_drains += oc.observe_drains;
  };
  if (const auto* net = dynamic_cast<const surf::FlowNetworkModel*>(&world.network())) {
    result.solver_solves += net->solver().solve_count();
    result.solver_vars_touched += net->solver().vars_touched();
    result.solver_cons_touched += net->solver().cons_touched();
    add_observe(net->solver().observe_counters());
  }
  if (const auto* cpu = dynamic_cast<const surf::CpuModel*>(&world.cpu())) {
    result.solver_solves += cpu->solver().solve_count();
    result.solver_vars_touched += cpu->solver().vars_touched();
    result.solver_cons_touched += cpu->solver().cons_touched();
    add_observe(cpu->solver().observe_counters());
  }
  result.p2p = world.p2p_counters();
  if (options.resources != nullptr) {
    result.resources_analyzed = true;
    const obs::ResourceCollector::Summary summary = options.resources->summary();
    result.top_bottleneck = summary.top_bottleneck;
    result.bottleneck_saturated_s = summary.bottleneck_saturated_s;
    result.max_link_utilization = summary.max_link_utilization;
  }
  if (spans != nullptr) {
    result.analyzed = true;
    result.analysis = obs::analyze(*spans);
    // Re-derive the per-rank usage split from the span layer: wait/transfer
    // come from the recorded blocked intervals, compute is everything else —
    // including compute that overlapped an in-flight nonblocking transfer,
    // which the record-granularity split above misattributes.
    for (std::size_t r = 0; r < result.rank_usage.size(); ++r) {
      const obs::RankBreakdown& b = result.analysis.ranks[r];
      RankUsage& u = result.rank_usage[r];
      u.wait_s = b.wait_s;
      u.transfer_s = b.transfer_s;
      u.comm_s = b.wait_s + b.transfer_s;
      u.compute_s = b.compute_s;
    }
  }
  return result;
}

ReplayResult replay_trace(const platform::Platform& platform, core::SmpiConfig config,
                          const std::string& trace_dir, const ReplayOptions& options) {
  const TiTrace trace = load_ti_trace(trace_dir);
  return replay_trace(platform, std::move(config), trace, options);
}

}  // namespace smpi::trace
