// Resource-centric observability: exact utilization timelines and contention
// attribution for the platform's links and hosts.
//
// The max-min solver computes, at every solve, exactly which constraint is
// saturated and how its capacity splits across flows — and then drops it.
// This layer keeps it: the surf models drain the solver's changed-constraint
// set at every settle (MaxMinSystem::drain_changed_constraints) and push one
// snapshot per changed resource. Allocations are piecewise-constant between
// solver events, so the resulting timelines are *exact*, not sampled: the
// integral of a link's usage over the run reconciles with the bytes it
// carried at 1e-9.
//
// Three products per resource:
//   - a utilization timeline: (t, usage, capacity) steps, each valid until
//     the next step;
//   - a saturation ledger: maximal intervals where usage == capacity (within
//     the solver's 1e-9 epsilon), each carrying the exact flow set and the
//     per-flow shares pinned there — contention attribution;
//   - aggregates: saturated-seconds, distinct contending flows, max
//     utilization — folded into a "top bottlenecks" ranking.
//
// Zero-cost when disabled: same global-slot install pattern as SpanCollector
// (one pointer load on the settle path), no engine timers or activities, and
// the solver's changed-tracking is off unless a model enables observing —
// simulated times and solver counters are bit-identical either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace smpi::obs {

enum class ResourceKind : int {
  kLink = 0,
  kHost,
};

const char* resource_kind_name(ResourceKind kind);

// One step of a piecewise-constant utilization timeline: `usage` out of
// `capacity` from `t` until the next step (or the end of the run).
struct UtilStep {
  double t = 0;
  double usage = 0;
  double capacity = 0;
};

// A maximal interval during which the resource was saturated with an
// unchanged flow set and share split. `shares` holds (flow id, allocation)
// pairs; resolve ids to labels through ResourceCollector::flow_label().
struct SaturationInterval {
  double t0 = 0;
  double t1 = -1;  // -1 while still open; finalize() closes it
  std::vector<std::pair<int, double>> shares;
};

struct ResourceTimeline {
  ResourceKind kind = ResourceKind::kLink;
  std::string name;
  std::vector<UtilStep> steps;
  std::vector<SaturationInterval> saturated;
  std::vector<int> flows_seen;  // sorted distinct flow ids from saturated intervals
};

class ResourceCollector {
 public:
  // --- registration (surf models, at construction while installed) ---------
  int add_resource(ResourceKind kind, std::string name, double capacity);
  // Returns an attribution id for a flow/execution; labels are owned here so
  // snapshots stay allocation-light (id + double pairs only).
  int add_flow(std::string label);
  const std::string& flow_label(int flow) const {
    return flow_labels_[static_cast<std::size_t>(flow)];
  }

  // --- snapshot hook (surf models, every settle, nondecreasing `now`) ------
  // The exact post-settle state of the resource's constraint. Consecutive
  // identical snapshots fold away; a snapshot at the same instant as the
  // previous one overwrites it (several mutations can settle at one date).
  void snapshot(int resource, double now, double usage, double capacity, bool saturated,
                const std::vector<std::pair<int, double>>& shares);

  // Close open saturation intervals and stamp the end of the observed window.
  void finalize(double end_time);

  // --- queries -------------------------------------------------------------
  std::size_t resource_count() const { return timelines_.size(); }
  const ResourceTimeline& timeline(int resource) const {
    return timelines_[static_cast<std::size_t>(resource)];
  }
  double end_time() const { return end_time_; }
  std::uint64_t snapshot_count() const { return snapshot_count_; }

  // Integral of usage over [0, end_time]: for a link, total bytes carried
  // times 1/bandwidth_efficiency-free — i.e. bytes/s * s == bytes.
  double utilization_integral(int resource) const;
  // Max over the timeline of usage/capacity (0 when the resource was idle).
  double max_utilization(int resource) const;
  double saturated_seconds(int resource) const;
  std::size_t distinct_flows(int resource) const {
    return timelines_[static_cast<std::size_t>(resource)].flows_seen.size();
  }

  struct Bottleneck {
    int resource = -1;
    double saturated_s = 0;
    std::size_t flows = 0;
  };
  // All resources with saturated time, ranked by saturated-seconds (ties:
  // more distinct flows, then registration order).
  std::vector<Bottleneck> bottlenecks() const;

  // Campaign/replay summary columns.
  struct Summary {
    std::string top_bottleneck;    // empty when nothing ever saturated
    double bottleneck_saturated_s = 0;
    double max_link_utilization = 0;  // across kLink resources only
  };
  Summary summary() const;

  // Human-readable report for `smpirun --resources`.
  std::string report(std::size_t top_n = 5) const;

 private:
  std::vector<ResourceTimeline> timelines_;
  std::vector<std::string> flow_labels_;
  // Reused across snapshots so the hot path allocates only when a share set
  // is actually stored into the ledger (interval open or membership change).
  std::vector<std::pair<int, double>> sorted_scratch_;
  double end_time_ = 0;
  std::uint64_t snapshot_count_ = 0;
};

// Global installation slot (capture/span pattern). Install *before* the
// SmpiWorld is built so the surf models register their resources and enable
// the solver's changed-tracking; the caller keeps ownership and must clear
// before destroying the collector.
extern ResourceCollector* g_resources;
void install_resources(ResourceCollector* collector);
void clear_resources();
inline bool resources_enabled() { return g_resources != nullptr; }
inline ResourceCollector* resources() { return g_resources; }

}  // namespace smpi::obs
