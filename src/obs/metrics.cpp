#include "obs/metrics.hpp"

#include <cstdio>

#include "obs/analysis.hpp"
#include "obs/profile.hpp"
#include "smpi/smpi.hpp"
#include "util/json.hpp"

namespace smpi::obs {

void MetricsRegistry::set(const std::string& name, double value) {
  for (Metric& metric : metrics_) {
    if (metric.name == name) {
      metric.value = value;
      metric.integer = false;
      return;
    }
  }
  metrics_.push_back({name, value, false});
}

void MetricsRegistry::set_counter(const std::string& name, std::uint64_t value) {
  for (Metric& metric : metrics_) {
    if (metric.name == name) {
      metric.value = static_cast<double>(value);
      metric.integer = true;
      return;
    }
  }
  metrics_.push_back({name, static_cast<double>(value), true});
}

const Metric* MetricsRegistry::find(const std::string& name) const {
  for (const Metric& metric : metrics_) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::string MetricsRegistry::text(const std::string& prefix_filter) const {
  std::string out;
  char line[192];
  for (const Metric& metric : metrics_) {
    if (!prefix_filter.empty() &&
        metric.name.compare(0, prefix_filter.size(), prefix_filter) != 0) {
      continue;
    }
    if (metric.integer) {
      std::snprintf(line, sizeof(line), "  %-32s %llu\n", metric.name.c_str(),
                    static_cast<unsigned long long>(metric.value));
    } else {
      std::snprintf(line, sizeof(line), "  %-32s %.9g\n", metric.name.c_str(), metric.value);
    }
    out += line;
  }
  return out;
}

util::JsonValue MetricsRegistry::json() const {
  auto doc = util::JsonValue::object();
  for (const Metric& metric : metrics_) {
    if (metric.integer) {
      doc.set(metric.name, util::JsonValue::number_text(
                               std::to_string(static_cast<std::uint64_t>(metric.value))));
    } else {
      doc.set(metric.name, util::JsonValue::number(metric.value));
    }
  }
  return doc;
}

void collect_p2p(MetricsRegistry& registry, const core::P2pCounters& counters) {
  registry.set_counter("p2p.pool_hits", counters.pool_hits);
  registry.set_counter("p2p.pool_misses", counters.pool_misses);
  registry.set_counter("p2p.eager_snapshots", counters.eager_snapshots);
  registry.set_counter("p2p.eager_copy_elided", counters.eager_copy_elided);
  registry.set_counter("p2p.eager_flush_snapshots", counters.eager_flush_snapshots);
  registry.set_counter("p2p.bytes_not_copied", counters.bytes_not_copied);
}

void collect_solver(MetricsRegistry& registry, std::uint64_t solves, std::uint64_t vars_touched,
                    std::uint64_t cons_touched) {
  registry.set_counter("solver.solves", solves);
  registry.set_counter("solver.vars_touched", vars_touched);
  registry.set_counter("solver.cons_touched", cons_touched);
}

void collect_analysis(MetricsRegistry& registry, const AnalysisResult& analysis) {
  registry.set("analysis.makespan_s", analysis.makespan);
  registry.set("analysis.wait_fraction", analysis.wait_fraction);
  registry.set("analysis.compute_imbalance", analysis.compute_imbalance);
  registry.set("analysis.total_compute_s", analysis.total_compute_s);
  registry.set("analysis.total_transfer_s", analysis.total_transfer_s);
  registry.set("analysis.total_wait_s", analysis.total_wait_s);
  registry.set("analysis.critical_path_s", analysis.path_length_s);
  registry.set("analysis.cp_compute_s", analysis.cp_compute_s);
  registry.set("analysis.cp_comm_s", analysis.cp_comm_s);
}

void collect_surf(MetricsRegistry& registry, std::uint64_t solves_attach,
                  std::uint64_t solves_release, std::uint64_t solves_capacity,
                  std::uint64_t solves_bound, std::uint64_t saturation_events,
                  std::uint64_t snapshot_drains) {
  registry.set_counter("surf.solves_attach", solves_attach);
  registry.set_counter("surf.solves_release", solves_release);
  registry.set_counter("surf.solves_capacity", solves_capacity);
  registry.set_counter("surf.solves_bound", solves_bound);
  registry.set_counter("surf.saturation_events", saturation_events);
  registry.set_counter("surf.snapshot_drains", snapshot_drains);
}

void collect_profile(MetricsRegistry& registry, const Profiler& profiler) {
  for (int k = 0; k < static_cast<int>(ProfKey::kCount); ++k) {
    const auto key = static_cast<ProfKey>(k);
    const ProfStats& stats = profiler.stats(key);
    const std::string base = std::string("profile.") + prof_key_name(key);
    registry.set_counter(base + ".calls", stats.calls);
    registry.set(base + ".seconds", stats.seconds);
  }
  registry.set("profile.total_wall_s", profiler.total_wall());
}

}  // namespace smpi::obs
