// Unified metrics registry: one ordered name -> value store that every
// reporting surface (smpirun --verbose/--analyze, ti_inspect --summary,
// campaign capsules) renders from, replacing the ad-hoc printf plumbing of
// P2pCounters / RankUsage / solver counters. Collectors read the existing
// counter structs — they never replace or reset them, so the underlying
// values stay bit-identical to the pre-registry paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smpi::util {
class JsonValue;
}

namespace smpi::core {
struct P2pCounters;
}

namespace smpi::obs {

struct AnalysisResult;
class Profiler;

struct Metric {
  std::string name;
  double value = 0;
  bool integer = false;  // render without a decimal point
};

class MetricsRegistry {
 public:
  void set(const std::string& name, double value);
  void set_counter(const std::string& name, std::uint64_t value);

  const std::vector<Metric>& metrics() const { return metrics_; }
  // nullptr when absent.
  const Metric* find(const std::string& name) const;

  // "  name = value" lines, insertion-ordered; `prefix_filter` keeps only
  // names starting with the prefix (empty = all).
  std::string text(const std::string& prefix_filter = "") const;
  util::JsonValue json() const;

 private:
  std::vector<Metric> metrics_;
};

// Collectors from the existing subsystem counters.
void collect_p2p(MetricsRegistry& registry, const core::P2pCounters& counters);
void collect_solver(MetricsRegistry& registry, std::uint64_t solves, std::uint64_t vars_touched,
                    std::uint64_t cons_touched);
void collect_analysis(MetricsRegistry& registry, const AnalysisResult& analysis);
void collect_profile(MetricsRegistry& registry, const Profiler& profiler);
// surf.* namespace: solver trigger classes plus observation-hook counters,
// summed across the network and CPU solvers (MaxMinSystem::ObserveCounters).
void collect_surf(MetricsRegistry& registry, std::uint64_t solves_attach,
                  std::uint64_t solves_release, std::uint64_t solves_capacity,
                  std::uint64_t solves_bound, std::uint64_t saturation_events,
                  std::uint64_t snapshot_drains);

}  // namespace smpi::obs
