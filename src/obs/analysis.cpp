#include "obs/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "trace/paje.hpp"
#include "util/json.hpp"

namespace smpi::obs {

namespace {

// Index of the last interval with t1 <= t, or -1. Intervals are t1-ordered
// (ranks are sequential; waits complete in program order).
int last_interval_before(const std::vector<BlockedInterval>& intervals, double t) {
  int lo = 0, hi = static_cast<int>(intervals.size()) - 1, best = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (intervals[static_cast<std::size_t>(mid)].t1 <= t) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

}  // namespace

AnalysisResult analyze(const SpanCollector& spans) {
  AnalysisResult result;
  result.nranks = spans.nranks();
  result.ranks.resize(static_cast<std::size_t>(result.nranks));

  // --- per-rank and per-op aggregation -----------------------------------
  std::map<std::string, OpStat> by_op;
  std::size_t total_intervals = 0;
  for (int r = 0; r < result.nranks; ++r) {
    RankBreakdown& rank = result.ranks[static_cast<std::size_t>(r)];
    for (const Span& span : spans.spans(r)) {
      rank.end_s = std::max(rank.end_s, span.t_end);
      rank.elapsed_s += span.elapsed();
      rank.wait_s += span.wait_s;
      rank.transfer_s += span.transfer_s;
      rank.compute_s += span.compute_s();
      OpStat& op = by_op[span.op];
      op.op = span.op;
      ++op.count;
      op.elapsed_s += span.elapsed();
      op.wait_s += span.wait_s;
      op.transfer_s += span.transfer_s;
      op.bytes += span.bytes;
    }
    for (const BlockedInterval& interval : spans.intervals(r)) {
      const double wait = interval.wait_s();
      switch (interval.cls) {
        case WaitClass::kLateSender:
          rank.late_sender_s += wait;
          break;
        case WaitClass::kLateReceiver:
          rank.late_receiver_s += wait;
          break;
        case WaitClass::kEarlyArrival:
          rank.early_arrival_s += wait;
          break;
        default:
          break;
      }
    }
    total_intervals += spans.intervals(r).size();
    result.makespan = std::max(result.makespan, rank.end_s);
    result.total_elapsed_s += rank.elapsed_s;
    result.total_compute_s += rank.compute_s;
    result.total_transfer_s += rank.transfer_s;
    result.total_wait_s += rank.wait_s;
  }
  for (auto& entry : by_op) result.ops.push_back(std::move(entry.second));
  std::sort(result.ops.begin(), result.ops.end(),
            [](const OpStat& a, const OpStat& b) { return a.elapsed_s > b.elapsed_s; });

  if (result.total_elapsed_s > 0) {
    result.wait_fraction = result.total_wait_s / result.total_elapsed_s;
  }
  double max_compute = 0;
  for (const RankBreakdown& rank : result.ranks) max_compute = std::max(max_compute, rank.compute_s);
  const double mean_compute =
      result.nranks > 0 ? result.total_compute_s / result.nranks : 0;
  if (mean_compute > 0) result.compute_imbalance = max_compute / mean_compute - 1.0;

  double late_sender = 0, late_receiver = 0, early_arrival = 0;
  for (const RankBreakdown& rank : result.ranks) {
    late_sender += rank.late_sender_s;
    late_receiver += rank.late_receiver_s;
    early_arrival += rank.early_arrival_s;
  }
  const double dominant = std::max({late_sender, late_receiver, early_arrival});
  if (dominant <= 0) {
    result.dominant_wait_state = "none";
  } else if (dominant == late_sender) {
    result.dominant_wait_state = "late_sender";
  } else if (dominant == late_receiver) {
    result.dominant_wait_state = "late_receiver";
  } else {
    result.dominant_wait_state = "early_arrival";
  }

  // --- critical path: backward time-continuous walk ----------------------
  if (result.makespan > 0) {
    int rank = 0;
    for (int r = 1; r < result.nranks; ++r) {
      if (result.ranks[static_cast<std::size_t>(r)].end_s >
          result.ranks[static_cast<std::size_t>(rank)].end_s) {
        rank = r;
      }
    }
    double t = result.ranks[static_cast<std::size_t>(rank)].end_s;
    // Cycle guard for degenerate zero-latency same-date jumps; any real walk
    // consumes one interval (or terminates) per step.
    std::size_t budget = 2 * total_intervals + static_cast<std::size_t>(result.nranks) + 16;
    while (budget-- > 0) {
      const auto& intervals = spans.intervals(rank);
      const int idx = last_interval_before(intervals, t);
      if (idx < 0) {
        if (t > 0) result.path.push_back({rank, 0, t, false, nullptr});
        result.path_complete = true;
        break;
      }
      const BlockedInterval& b = intervals[static_cast<std::size_t>(idx)];
      if (b.t1 < t) result.path.push_back({rank, b.t1, t, false, nullptr});
      const bool jump = b.peer >= 0 && b.peer_ready > b.t0;
      const double join = jump ? std::min(std::max(b.t0, b.peer_ready), b.t1) : b.t0;
      const char* op = nullptr;
      if (b.span >= 0 &&
          static_cast<std::size_t>(b.span) < spans.spans(rank).size()) {
        op = spans.spans(rank)[static_cast<std::size_t>(b.span)].op;
      }
      if (b.t1 > join) result.path.push_back({rank, join, b.t1, true, op});
      if (jump) {
        rank = b.peer;
        t = std::min(b.peer_ready, b.t1);
      } else {
        t = b.t0;
      }
    }
    std::reverse(result.path.begin(), result.path.end());
    for (const PathSegment& seg : result.path) {
      const double len = seg.t1 - seg.t0;
      result.path_length_s += len;
      if (seg.comm) {
        result.cp_comm_s += len;
      } else {
        result.cp_compute_s += len;
      }
    }
  } else {
    result.path_complete = true;
  }
  return result;
}

std::string analysis_text(const AnalysisResult& result) {
  std::string out;
  char line[256];
  const auto pct = [](double part, double whole) {
    return whole > 0 ? 100.0 * part / whole : 0.0;
  };
  std::snprintf(line, sizeof(line),
                "wait-state analysis: %d ranks, makespan %.9f s, wait fraction %.1f%%\n",
                result.nranks, result.makespan, 100.0 * result.wait_fraction);
  out += line;
  std::snprintf(line, sizeof(line),
                "  time split: compute %.1f%%  transfer %.1f%%  wait %.1f%%  "
                "(compute imbalance %.1f%%)\n",
                pct(result.total_compute_s, result.total_elapsed_s),
                pct(result.total_transfer_s, result.total_elapsed_s),
                pct(result.total_wait_s, result.total_elapsed_s),
                100.0 * result.compute_imbalance);
  out += line;
  double late_sender = 0, late_receiver = 0, early_arrival = 0;
  for (const RankBreakdown& rank : result.ranks) {
    late_sender += rank.late_sender_s;
    late_receiver += rank.late_receiver_s;
    early_arrival += rank.early_arrival_s;
  }
  std::snprintf(line, sizeof(line),
                "  wait states: late_sender %.6f s  late_receiver %.6f s  "
                "early_arrival %.6f s  (dominant: %s)\n",
                late_sender, late_receiver, early_arrival, result.dominant_wait_state.c_str());
  out += line;
  std::snprintf(line, sizeof(line),
                "  critical path: length %.9f s (%s), compute %.6f s (%.1f%%), "
                "comm %.6f s (%.1f%%), %zu segments\n",
                result.path_length_s, result.path_complete ? "complete" : "truncated",
                result.cp_compute_s, pct(result.cp_compute_s, result.path_length_s),
                result.cp_comm_s, pct(result.cp_comm_s, result.path_length_s),
                result.path.size());
  out += line;
  const std::size_t top = std::min<std::size_t>(result.ops.size(), 8);
  for (std::size_t i = 0; i < top; ++i) {
    const OpStat& op = result.ops[i];
    std::snprintf(line, sizeof(line),
                  "  op %-14s count %8llu  elapsed %.6f s  wait %.6f s  transfer %.6f s\n",
                  op.op.c_str(), static_cast<unsigned long long>(op.count), op.elapsed_s,
                  op.wait_s, op.transfer_s);
    out += line;
  }
  return out;
}

util::JsonValue analysis_json(const AnalysisResult& result) {
  auto doc = util::JsonValue::object();
  doc.set("makespan_s", util::JsonValue::number(result.makespan));
  doc.set("wait_fraction", util::JsonValue::number(result.wait_fraction));
  doc.set("compute_imbalance", util::JsonValue::number(result.compute_imbalance));
  doc.set("dominant_wait_state", util::JsonValue::string(result.dominant_wait_state));
  doc.set("total_compute_s", util::JsonValue::number(result.total_compute_s));
  doc.set("total_transfer_s", util::JsonValue::number(result.total_transfer_s));
  doc.set("total_wait_s", util::JsonValue::number(result.total_wait_s));
  doc.set("critical_path_s", util::JsonValue::number(result.path_length_s));
  doc.set("cp_compute_s", util::JsonValue::number(result.cp_compute_s));
  doc.set("cp_comm_s", util::JsonValue::number(result.cp_comm_s));
  auto ranks = util::JsonValue::array();
  for (const RankBreakdown& rank : result.ranks) {
    auto row = util::JsonValue::object();
    row.set("compute_s", util::JsonValue::number(rank.compute_s));
    row.set("transfer_s", util::JsonValue::number(rank.transfer_s));
    row.set("wait_s", util::JsonValue::number(rank.wait_s));
    row.set("late_sender_s", util::JsonValue::number(rank.late_sender_s));
    row.set("late_receiver_s", util::JsonValue::number(rank.late_receiver_s));
    row.set("early_arrival_s", util::JsonValue::number(rank.early_arrival_s));
    ranks.append(std::move(row));
  }
  doc.set("ranks", std::move(ranks));
  auto ops = util::JsonValue::array();
  for (const OpStat& op : result.ops) {
    auto row = util::JsonValue::object();
    row.set("op", util::JsonValue::string(op.op));
    row.set("count", util::JsonValue::number_text(std::to_string(op.count)));
    row.set("elapsed_s", util::JsonValue::number(op.elapsed_s));
    row.set("wait_s", util::JsonValue::number(op.wait_s));
    row.set("transfer_s", util::JsonValue::number(op.transfer_s));
    row.set("bytes", util::JsonValue::number_text(std::to_string(op.bytes)));
    ops.append(std::move(row));
  }
  doc.set("ops", std::move(ops));
  return doc;
}

std::uint64_t export_classified_paje(const SpanCollector& spans, const std::string& path,
                                     double finish_time) {
  struct Event {
    double date;
    int rank;
    bool push;  // false = pop
    const char* state;
  };
  std::vector<Event> events;
  for (int r = 0; r < spans.nranks(); ++r) {
    // Group this rank's intervals by owning span (both streams are in
    // program order, so one forward scan suffices).
    const auto& intervals = spans.intervals(r);
    std::size_t next = 0;
    const auto& rank_spans = spans.spans(r);
    for (std::size_t s = 0; s < rank_spans.size(); ++s) {
      const Span& span = rank_spans[s];
      double cursor = span.t_start;
      const auto emit = [&](double t0, double t1, const char* state) {
        if (t1 <= t0) return;
        events.push_back({t0, r, true, state});
        events.push_back({t1, r, false, state});
      };
      while (next < intervals.size() && intervals[next].span <= static_cast<int>(s)) {
        const BlockedInterval& b = intervals[next];
        if (b.span != static_cast<int>(s)) {  // orphan (no open span): skip
          ++next;
          continue;
        }
        emit(cursor, b.t0, "compute");
        const double fs = b.t0 + b.wait_s();
        emit(b.t0, fs, wait_class_name(b.cls));
        emit(fs, b.t1, "transfer");
        cursor = std::max(cursor, b.t1);
        ++next;
      }
      emit(cursor, span.t_end, "compute");
    }
  }
  // Paje wants globally non-decreasing dates. Events were appended rank-major
  // in per-rank order; a stable sort by date preserves each rank's pop-
  // before-push sequencing at shared dates.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.date < b.date; });
  trace::PajeWriter writer(path);
  writer.begin(spans.nranks());
  for (const Event& event : events) {
    if (event.push) {
      writer.push_state(event.rank, event.state, event.date);
    } else {
      writer.pop_state(event.rank, event.date);
    }
  }
  writer.finish(std::max(finish_time, events.empty() ? 0.0 : events.back().date));
  return writer.events();
}

}  // namespace smpi::obs
