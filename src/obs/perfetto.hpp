// Chrome/Perfetto trace-event JSON export: one file that ui.perfetto.dev (or
// chrome://tracing) opens into a full simulation timeline.
//
// Track layout:
//   pid 1 "resources"    — one counter track ("C" events) per link/host from
//                          the ResourceCollector's exact piecewise-constant
//                          utilization timelines, in percent of capacity;
//   pid 2 "ranks"        — one track per rank from the SpanCollector's span
//                          stream ("X" complete events), colored by the
//                          span's dominant wait class (late_sender red,
//                          late_receiver orange, early_arrival yellow,
//                          local/compute green);
//   pid 3 "self-profile" — one track per simulator hot-path bucket from the
//                          Profiler ("X" at ts 0 with the bucket's wall time
//                          and call count) — metadata about the simulator
//                          itself, not simulated time.
//
// Timestamps are simulated seconds scaled to trace microseconds. Any of the
// three collectors may be null; their tracks are simply omitted.
#pragma once

#include <string>

namespace smpi::obs {

class ResourceCollector;
class SpanCollector;
class Profiler;

// Writes the trace; returns false (and leaves a partial file) only on I/O
// failure. `end_time` caps the resource counter tracks (normally the
// simulated makespan).
bool write_perfetto_trace(const std::string& path, const ResourceCollector* resources,
                          const SpanCollector* spans, const Profiler* profiler,
                          double end_time);

}  // namespace smpi::obs
