#include "obs/profile.hpp"

#include <cstdio>
#include <string>

#include "util/json.hpp"

namespace smpi::obs {

Profiler* g_profiler = nullptr;

void install_profiler(Profiler* profiler) { g_profiler = profiler; }
void clear_profiler() { g_profiler = nullptr; }

const char* prof_key_name(ProfKey key) {
  switch (key) {
    case ProfKey::kSolverSolve:
      return "solver_solve";
    case ProfKey::kCalendarAdvance:
      return "calendar_advance";
    case ProfKey::kContextSwitch:
      return "context_switch";
    case ProfKey::kPoolOp:
      return "pool_op";
    case ProfKey::kCount:
      break;
  }
  return "?";
}

std::string profile_text(const Profiler& profiler) {
  std::string out;
  char line[160];
  const double total = profiler.total_wall();
  for (int k = 0; k < static_cast<int>(ProfKey::kCount); ++k) {
    const auto key = static_cast<ProfKey>(k);
    const ProfStats& s = profiler.stats(key);
    const double pct = total > 0 ? 100.0 * s.seconds / total : 0;
    std::snprintf(line, sizeof(line), "  %-18s %12llu calls  %12.6f s  %5.1f%%\n",
                  prof_key_name(key), static_cast<unsigned long long>(s.calls), s.seconds, pct);
    out += line;
  }
  if (total > 0) {
    std::snprintf(line, sizeof(line), "  %-18s %12s        %12.6f s\n", "total_wall", "", total);
    out += line;
  }
  return out;
}

util::JsonValue profile_json(const Profiler& profiler) {
  auto doc = util::JsonValue::object();
  doc.set("total_wall_s", util::JsonValue::number(profiler.total_wall()));
  auto buckets = util::JsonValue::object();
  for (int k = 0; k < static_cast<int>(ProfKey::kCount); ++k) {
    const auto key = static_cast<ProfKey>(k);
    const ProfStats& s = profiler.stats(key);
    auto bucket = util::JsonValue::object();
    bucket.set("calls", util::JsonValue::number_text(std::to_string(s.calls)));
    bucket.set("seconds", util::JsonValue::number(s.seconds));
    buckets.set(prof_key_name(key), std::move(bucket));
  }
  doc.set("buckets", std::move(buckets));
  return doc;
}

}  // namespace smpi::obs
