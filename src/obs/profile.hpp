// Simulator self-profiling: scoped wall-clock timers around the engine's own
// hot paths (solver solves, calendar drains, context switches, pool
// operations). This measures the *simulator's* wall time, not simulated
// time — the always-available complement to the one-off benches under
// bench/.
//
// Zero-cost when disabled: ProfScope's constructor is one global load and a
// branch; std::chrono::steady_clock is only read while a Profiler is
// installed. Installation follows the capture/span pattern (one global slot,
// caller owns the object), so a disabled run is bit-identical in behavior
// and unmeasurably close in wall time.
//
// Deliberately dependency-free (<array>/<chrono>/<cstdint> only) so sim/ and
// surf/ can include it without creating a layering cycle.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace smpi::util {
class JsonValue;
}

namespace smpi::obs {

// One bucket per instrumented simulator hot path.
enum class ProfKey : int {
  kSolverSolve = 0,    // MaxMinSystem::solve (full/component/lazy)
  kCalendarAdvance,    // Engine::advance_time (settle + calendar/timer drain)
  kContextSwitch,      // Engine::run_actor resume slices (count == switches)
  kPoolOp,             // engine object/buffer pool acquire+release
  kCount,
};

const char* prof_key_name(ProfKey key);

struct ProfStats {
  std::uint64_t calls = 0;
  double seconds = 0;
};

class Profiler {
 public:
  void add(ProfKey key, double seconds) {
    auto& slot = slots_[static_cast<std::size_t>(key)];
    ++slot.calls;
    slot.seconds += seconds;
  }
  const ProfStats& stats(ProfKey key) const { return slots_[static_cast<std::size_t>(key)]; }

  // Total wall clock of the profiled region (set by the driver around the
  // run, so bucket fractions have a denominator).
  void set_total_wall(double seconds) { total_wall_s_ = seconds; }
  double total_wall() const { return total_wall_s_; }

 private:
  std::array<ProfStats, static_cast<std::size_t>(ProfKey::kCount)> slots_{};
  double total_wall_s_ = 0;
};

// Global installation slot (capture/span pattern). The caller keeps
// ownership and must clear before destroying the profiler.
extern Profiler* g_profiler;
void install_profiler(Profiler* profiler);
void clear_profiler();
inline bool profiling_enabled() { return g_profiler != nullptr; }

// RAII timer around one hot-path invocation. When no profiler is installed
// the constructor is a load + branch and the destructor a branch.
class ProfScope {
 public:
  explicit ProfScope(ProfKey key) : key_(key), active_(g_profiler != nullptr) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ProfScope() {
    if (active_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      g_profiler->add(key_, std::chrono::duration<double>(elapsed).count());
    }
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfKey key_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

// Report formatting (profile.cpp; callers of profile_json include
// util/json.hpp themselves).
std::string profile_text(const Profiler& profiler);
util::JsonValue profile_json(const Profiler& profiler);

}  // namespace smpi::obs
