#include "obs/span.hpp"

namespace smpi::obs {

SpanCollector* g_spans = nullptr;

void install_spans(SpanCollector* collector) { g_spans = collector; }
void clear_spans() { g_spans = nullptr; }

const char* wait_class_name(WaitClass cls) {
  switch (cls) {
    case WaitClass::kLocal:
      return "local";
    case WaitClass::kLateSender:
      return "late_sender";
    case WaitClass::kLateReceiver:
      return "late_receiver";
    case WaitClass::kEarlyArrival:
      return "early_arrival";
    case WaitClass::kCount:
      break;
  }
  return "?";
}

SpanCollector::SpanCollector(int nranks)
    : streams_(static_cast<std::size_t>(nranks < 0 ? 0 : nranks)) {}

void SpanCollector::on_enter(int rank, const char* op, double now) {
  auto& stream = streams_[static_cast<std::size_t>(rank)];
  Span span;
  span.op = op;
  span.t_start = now;
  span.t_end = now;
  stream.open = static_cast<int>(stream.spans.size());
  stream.spans.push_back(span);
}

void SpanCollector::on_exit(int rank, double now) {
  auto& stream = streams_[static_cast<std::size_t>(rank)];
  if (stream.open < 0) return;
  stream.spans[static_cast<std::size_t>(stream.open)].t_end = now;
  stream.open = -1;
}

void SpanCollector::annotate_peer(int rank, int peer_world) {
  auto& stream = streams_[static_cast<std::size_t>(rank)];
  if (stream.open < 0) return;
  stream.spans[static_cast<std::size_t>(stream.open)].peer = peer_world;
}

void SpanCollector::add_bytes(int rank, std::uint64_t bytes) {
  auto& stream = streams_[static_cast<std::size_t>(rank)];
  if (stream.open < 0) return;
  stream.spans[static_cast<std::size_t>(stream.open)].bytes += bytes;
}

void SpanCollector::on_blocked(int rank, double t0, double t1, double flow_start,
                               double peer_ready, int peer_world, std::uint64_t bytes,
                               WaitClass cls) {
  if (t1 <= t0) return;  // zero-length block: nothing observable happened
  auto& stream = streams_[static_cast<std::size_t>(rank)];
  BlockedInterval interval;
  interval.t0 = t0;
  interval.t1 = t1;
  interval.flow_start = flow_start;
  interval.peer_ready = peer_ready;
  interval.peer = peer_world;
  interval.bytes = bytes;
  interval.cls = cls;
  interval.span = stream.open;
  stream.intervals.push_back(interval);
  if (stream.open >= 0) {
    Span& span = stream.spans[static_cast<std::size_t>(stream.open)];
    span.wait_s += interval.wait_s();
    span.transfer_s += interval.transfer_s();
  }
}

}  // namespace smpi::obs
