#include "obs/perfetto.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/span.hpp"

namespace smpi::obs {

namespace {

constexpr double kUsPerSecond = 1e6;

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Catapult reserved color names, one per wait class (green / red / orange /
// yellow in the default palette).
const char* wait_class_cname(WaitClass cls) {
  switch (cls) {
    case WaitClass::kLocal: return "good";
    case WaitClass::kLateSender: return "terrible";
    case WaitClass::kLateReceiver: return "bad";
    case WaitClass::kEarlyArrival: return "yellow";
    default: return "grey";
  }
}

class EventStream {
 public:
  explicit EventStream(std::ostream& out) : out_(out) {}
  // Emits the separating comma and the event's common prefix; the caller
  // appends event-specific fields and calls close().
  void open(const char* ph, int pid, int tid, double ts_us, const std::string& name) {
    if (!first_) out_ << ",\n";
    first_ = false;
    char head[128];
    std::snprintf(head, sizeof(head), "{\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.9g,",
                  ph, pid, tid, ts_us);
    out_ << head << "\"name\":\"" << escape(name) << "\"";
  }
  void close() { out_ << "}"; }
  std::ostream& raw() { return out_; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void thread_name(EventStream& events, int pid, int tid, const std::string& name) {
  events.open("M", pid, tid, 0, "thread_name");
  events.raw() << ",\"args\":{\"name\":\"" << escape(name) << "\"}";
  events.close();
}

void process_name(EventStream& events, int pid, const char* name) {
  events.open("M", pid, 0, 0, "process_name");
  events.raw() << ",\"args\":{\"name\":\"" << name << "\"}";
  events.close();
}

void write_resources(EventStream& events, const ResourceCollector& resources) {
  process_name(events, 1, "resources");
  for (int r = 0; r < static_cast<int>(resources.resource_count()); ++r) {
    const ResourceTimeline& tl = resources.timeline(r);
    const std::string track =
        std::string(resource_kind_name(tl.kind)) + " " + tl.name;
    thread_name(events, 1, r, track);
    for (const UtilStep& step : tl.steps) {
      const double pct = step.capacity > 0 ? step.usage / step.capacity * 100.0 : 0.0;
      events.open("C", 1, r, step.t * kUsPerSecond, track);
      char args[64];
      std::snprintf(args, sizeof(args), ",\"args\":{\"util_pct\":%.6g}", pct);
      events.raw() << args;
      events.close();
    }
  }
}

void write_ranks(EventStream& events, const SpanCollector& spans) {
  process_name(events, 2, "ranks");
  std::vector<std::array<double, static_cast<std::size_t>(WaitClass::kCount)>> span_wait;
  for (int rank = 0; rank < spans.nranks(); ++rank) {
    thread_name(events, 2, rank, "rank " + std::to_string(rank));
    const auto& stream = spans.spans(rank);
    // Dominant wait class per span: the class with the most blocked-wait
    // seconds charged to it; a span with no wait is local/compute.
    span_wait.assign(stream.size(), {});
    for (const BlockedInterval& iv : spans.intervals(rank)) {
      if (iv.span < 0 || iv.span >= static_cast<int>(stream.size())) continue;
      span_wait[static_cast<std::size_t>(iv.span)][static_cast<std::size_t>(iv.cls)] +=
          iv.wait_s();
    }
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Span& span = stream[i];
      WaitClass dominant = WaitClass::kLocal;
      double best = 0;
      for (int cls = 0; cls < static_cast<int>(WaitClass::kCount); ++cls) {
        if (span_wait[i][static_cast<std::size_t>(cls)] > best) {
          best = span_wait[i][static_cast<std::size_t>(cls)];
          dominant = static_cast<WaitClass>(cls);
        }
      }
      events.open("X", 2, rank, span.t_start * kUsPerSecond, span.op);
      char args[256];
      std::snprintf(args, sizeof(args),
                    ",\"dur\":%.9g,\"cname\":\"%s\",\"args\":{\"peer\":%d,\"bytes\":%llu,"
                    "\"wait_s\":%.9g,\"transfer_s\":%.9g,\"wait_class\":\"%s\"}",
                    span.elapsed() * kUsPerSecond, wait_class_cname(dominant), span.peer,
                    static_cast<unsigned long long>(span.bytes), span.wait_s,
                    span.transfer_s, wait_class_name(dominant));
      events.raw() << args;
      events.close();
    }
  }
}

void write_profile(EventStream& events, const Profiler& profiler) {
  process_name(events, 3, "self-profile");
  for (int k = 0; k < static_cast<int>(ProfKey::kCount); ++k) {
    const auto key = static_cast<ProfKey>(k);
    const ProfStats& stats = profiler.stats(key);
    thread_name(events, 3, k, prof_key_name(key));
    events.open("X", 3, k, 0, prof_key_name(key));
    char args[128];
    std::snprintf(args, sizeof(args), ",\"dur\":%.9g,\"args\":{\"calls\":%llu}",
                  stats.seconds * kUsPerSecond,
                  static_cast<unsigned long long>(stats.calls));
    events.raw() << args;
    events.close();
  }
}

}  // namespace

bool write_perfetto_trace(const std::string& path, const ResourceCollector* resources,
                          const SpanCollector* spans, const Profiler* profiler,
                          double end_time) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventStream events(out);
  if (resources != nullptr) write_resources(events, *resources);
  if (spans != nullptr) write_ranks(events, *spans);
  if (profiler != nullptr) write_profile(events, *profiler);
  // Anchor the end of the simulated window so counter tracks don't visually
  // stop at their last change.
  events.open("I", 1, 0, end_time * kUsPerSecond, "end of simulation");
  events.raw() << ",\"s\":\"g\"";
  events.close();
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace smpi::obs
