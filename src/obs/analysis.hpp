// Wait-state classification and critical-path extraction over a span stream.
//
// Wait states follow the Scalasca taxonomy, reduced to what the simulator
// can attribute exactly:
//   late_sender    — a receive sat idle because the matching send had not
//                    been posted yet (wait portion of a recv-side block);
//   late_receiver  — a rendezvous send sat idle because the receive had not
//                    been posted (the data cannot flow until it is);
//   early_arrival  — a rank blocked inside a collective waiting for other
//                    ranks (the collective-internal recv/send waits);
//   transfer       — the network actually moving bytes (not a wait state);
//   compute        — span time not covered by any blocked interval.
// Per-phase load imbalance surfaces two ways: early_arrival time at the
// collective sync points, and the per-rank compute spread (imbalance).
//
// The critical path is extracted by a backward time-continuous walk from the
// rank that finishes last: local (unblocked) stretches are attributed as
// compute, blocked stretches as communication, and whenever an interval was
// enabled by a peer action *after* the block began (peer_ready > t0) the
// walk jumps to that peer at that date. Segments tile [0, makespan] with no
// gaps or overlaps, so the path length equals the makespan exactly (to
// floating-point summation error, < 1e-9 relative).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace smpi::util {
class JsonValue;
}

namespace smpi::obs {

struct RankBreakdown {
  double end_s = 0;      // date of the rank's last span end
  double elapsed_s = 0;  // sum of span elapsed times
  double compute_s = 0;  // elapsed - transfer - wait
  double transfer_s = 0;
  double wait_s = 0;
  double late_sender_s = 0;
  double late_receiver_s = 0;
  double early_arrival_s = 0;
};

// Aggregate over every span with the same op name.
struct OpStat {
  std::string op;
  std::uint64_t count = 0;
  double elapsed_s = 0;
  double wait_s = 0;
  double transfer_s = 0;
  std::uint64_t bytes = 0;
};

struct PathSegment {
  int rank = -1;
  double t0 = 0;
  double t1 = 0;
  bool comm = false;        // true: blocked/communication, false: local work
  const char* op = nullptr;  // owning span's op for comm segments (may be null)
};

struct AnalysisResult {
  int nranks = 0;
  double makespan = 0;  // max rank end date
  std::vector<RankBreakdown> ranks;
  std::vector<OpStat> ops;  // sorted by elapsed, descending

  // Whole-run totals.
  double total_elapsed_s = 0;
  double total_compute_s = 0;
  double total_transfer_s = 0;
  double total_wait_s = 0;
  double wait_fraction = 0;      // total wait / total elapsed
  double compute_imbalance = 0;  // max rank compute / mean rank compute - 1
  std::string dominant_wait_state;  // late_sender | late_receiver | early_arrival | none

  // Critical path (forward order, tiling [0, makespan]).
  std::vector<PathSegment> path;
  double path_length_s = 0;
  double cp_compute_s = 0;
  double cp_comm_s = 0;
  bool path_complete = false;  // walk reached date 0 (always, absent cycles at one date)
};

AnalysisResult analyze(const SpanCollector& spans);

// Human-readable report (smpirun --analyze).
std::string analysis_text(const AnalysisResult& result);

// JSON form (campaign rows embed a reduced version; this is the full one).
util::JsonValue analysis_json(const AnalysisResult& result);

// Paje timeline colored by wait-state class: each rank's states are
// "compute", "transfer", or the wait-state class name, post-hoc from the
// span stream (globally date-sorted, as the Paje format requires). Returns
// the number of events written.
std::uint64_t export_classified_paje(const SpanCollector& spans, const std::string& path,
                                     double finish_time);

}  // namespace smpi::obs
