// Span layer: per-MPI-call observability stream underneath the analysis
// subsystem.
//
// Every application-level MPI call (the outermost ApiScope on a rank) opens
// one Span: (op, peer, bytes, t_start, t_end) in simulated time. While the
// span is open, the wait sites (wait_request and friends in smpi/p2p.cpp)
// record BlockedIntervals — the stretches the rank actually sat blocked —
// annotated with when the underlying data flow started (`flow_start`) and
// when the peer enabled the transfer (`peer_ready`). The interval splits
// into wait = [t0, flow_start) (idle, waiting for the peer or protocol) and
// transfer = [flow_start, t1) (the network doing work); everything of the
// span not covered by an interval is compute/local overhead. By
// construction compute + transfer + wait == elapsed per span, exactly.
//
// `peer_ready` is the cross-rank dependency edge the critical-path walk
// follows: the simulated date at which the peer performed the action that
// enabled this interval to end (posted the eager envelope, matched the
// rendezvous). The peer was running — not blocked — at that date, which is
// what makes the backward walk well-founded.
//
// Zero-cost when disabled: every hook guards on one global pointer load
// (spans_enabled()), the collector allocates nothing until installed, and
// recording never creates engine timers or activities — simulated times are
// bit-identical with spans on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smpi::obs {

enum class WaitClass : int {
  kLocal = 0,      // poll/compute: no cross-rank dependency recorded
  kLateSender,     // receive blocked on a sender that had not posted yet
  kLateReceiver,   // rendezvous send blocked on a receiver that had not posted
  kEarlyArrival,   // blocked inside a collective waiting for other ranks
  kCount,
};

const char* wait_class_name(WaitClass cls);

struct Span {
  const char* op = "?";  // ApiScope state literal ("send", "bcast", "computing", ...)
  int peer = -1;         // world rank of the peer (app-level p2p), -1 otherwise
  std::uint64_t bytes = 0;
  double t_start = 0;
  double t_end = 0;
  double wait_s = 0;      // summed over the span's blocked intervals
  double transfer_s = 0;  // summed over the span's blocked intervals
  double elapsed() const { return t_end - t_start; }
  double compute_s() const { return elapsed() - wait_s - transfer_s; }
};

struct BlockedInterval {
  double t0 = 0;           // block start (simulated)
  double t1 = 0;           // block end
  double flow_start = -1;  // when the data flow began; < t0 means "before we blocked"
  double peer_ready = -1;  // when the peer enabled this transfer; < 0 = no edge
  int peer = -1;           // peer world rank; -1 = no cross-rank edge
  std::uint64_t bytes = 0;
  WaitClass cls = WaitClass::kLocal;
  int span = -1;  // index of the owning span in the rank's stream (-1 = none)
  double wait_s() const {
    const double fs = flow_start < t0 ? t0 : (flow_start > t1 ? t1 : flow_start);
    return fs - t0;
  }
  double transfer_s() const { return (t1 - t0) - wait_s(); }
};

class SpanCollector {
 public:
  explicit SpanCollector(int nranks);

  int nranks() const { return static_cast<int>(streams_.size()); }
  const std::vector<Span>& spans(int rank) const {
    return streams_[static_cast<std::size_t>(rank)].spans;
  }
  const std::vector<BlockedInterval>& intervals(int rank) const {
    return streams_[static_cast<std::size_t>(rank)].intervals;
  }

  // --- hooks (called from the smpi layer, only while installed) -----------
  void on_enter(int rank, const char* op, double now);
  void on_exit(int rank, double now);
  // Attach peer/bytes to the open span (app-level p2p posts). Collective
  // spans accumulate bytes from their internal sends but keep peer == -1.
  void annotate_peer(int rank, int peer_world);
  void add_bytes(int rank, std::uint64_t bytes);
  void on_blocked(int rank, double t0, double t1, double flow_start, double peer_ready,
                  int peer_world, std::uint64_t bytes, WaitClass cls);

 private:
  struct RankStream {
    std::vector<Span> spans;
    std::vector<BlockedInterval> intervals;  // t1-ordered (ranks are sequential)
    int open = -1;                           // index of the open span, -1 when idle
  };
  std::vector<RankStream> streams_;
};

// Global installation slot (same pattern as trace::install_capture). The
// caller keeps ownership and must clear before destroying the collector.
extern SpanCollector* g_spans;
void install_spans(SpanCollector* collector);
void clear_spans();
inline bool spans_enabled() { return g_spans != nullptr; }
inline SpanCollector* spans() { return g_spans; }

}  // namespace smpi::obs
