#include "obs/resource.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace smpi::obs {

ResourceCollector* g_resources = nullptr;

void install_resources(ResourceCollector* collector) { g_resources = collector; }
void clear_resources() { g_resources = nullptr; }

const char* resource_kind_name(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kLink: return "link";
    case ResourceKind::kHost: return "host";
  }
  return "?";
}

int ResourceCollector::add_resource(ResourceKind kind, std::string name, double capacity) {
  ResourceTimeline tl;
  tl.kind = kind;
  tl.name = std::move(name);
  // Every resource starts idle at t = 0; the first real snapshot extends the
  // piecewise-constant history from there.
  tl.steps.push_back({0.0, 0.0, capacity});
  timelines_.push_back(std::move(tl));
  return static_cast<int>(timelines_.size()) - 1;
}

int ResourceCollector::add_flow(std::string label) {
  flow_labels_.push_back(std::move(label));
  return static_cast<int>(flow_labels_.size()) - 1;
}

void ResourceCollector::snapshot(int resource, double now, double usage, double capacity,
                                 bool saturated,
                                 const std::vector<std::pair<int, double>>& shares) {
  SMPI_REQUIRE(resource >= 0 && resource < static_cast<int>(timelines_.size()),
               "snapshot on unregistered resource");
  ++snapshot_count_;
  auto& tl = timelines_[static_cast<std::size_t>(resource)];

  // Timeline step: overwrite same-instant snapshots (several mutations can
  // settle at one simulated date — only the final state is the history),
  // fold away no-op steps.
  if (!tl.steps.empty() && tl.steps.back().t == now) {
    tl.steps.back().usage = usage;
    tl.steps.back().capacity = capacity;
  } else if (tl.steps.empty() || tl.steps.back().usage != usage ||
             tl.steps.back().capacity != capacity) {
    tl.steps.push_back({now, usage, capacity});
  }

  // Saturation ledger. Shares are compared order-independently: constraint
  // membership lists reorder on release, which must not split an interval.
  const bool open = !tl.saturated.empty() && tl.saturated.back().t1 < 0;
  if (!saturated && !open) return;  // idle resource: no ledger work at all
  if (!saturated) {
    auto& cur = tl.saturated.back();
    if (cur.t0 == now) {
      tl.saturated.pop_back();  // zero-length: saturation never lasted
    } else {
      cur.t1 = now;
    }
    return;
  }

  // Shares are compared order-independently: constraint membership lists
  // reorder on release, which must not split an interval. The steady state
  // (component re-solve, same flows at the same rates) is recognized with a
  // binary-search probe against the stored sorted set before any copy or
  // sort happens — the hot path allocates nothing.
  auto same_share_set = [&](const std::vector<std::pair<int, double>>& stored) {
    if (stored.size() != shares.size()) return false;
    for (const auto& entry : shares) {
      auto it = std::lower_bound(
          stored.begin(), stored.end(), entry.first,
          [](const std::pair<int, double>& a, int flow) { return a.first < flow; });
      if (it == stored.end() || it->first != entry.first || it->second != entry.second) {
        return false;
      }
    }
    return true;
  };
  auto note_flows = [&](const std::vector<std::pair<int, double>>& set) {
    for (const auto& [flow, share] : set) {
      (void)share;
      auto it = std::lower_bound(tl.flows_seen.begin(), tl.flows_seen.end(), flow);
      if (it == tl.flows_seen.end() || *it != flow) tl.flows_seen.insert(it, flow);
    }
  };

  if (open && same_share_set(tl.saturated.back().shares)) return;
  sorted_scratch_.assign(shares.begin(), shares.end());
  std::sort(sorted_scratch_.begin(), sorted_scratch_.end());
  if (open) {
    auto& cur = tl.saturated.back();
    if (cur.t0 == now) {
      cur.shares = sorted_scratch_;
      note_flows(cur.shares);
    } else {
      cur.t1 = now;
      SaturationInterval next;
      next.t0 = now;
      next.shares = sorted_scratch_;
      note_flows(next.shares);
      tl.saturated.push_back(std::move(next));
    }
  } else {
    SaturationInterval next;
    next.t0 = now;
    next.shares = sorted_scratch_;
    note_flows(next.shares);
    tl.saturated.push_back(std::move(next));
  }
}

void ResourceCollector::finalize(double end_time) {
  end_time_ = end_time;
  for (auto& tl : timelines_) {
    if (!tl.saturated.empty() && tl.saturated.back().t1 < 0) {
      auto& cur = tl.saturated.back();
      if (cur.t0 >= end_time) {
        tl.saturated.pop_back();
      } else {
        cur.t1 = end_time;
      }
    }
  }
}

double ResourceCollector::utilization_integral(int resource) const {
  const auto& tl = timelines_[static_cast<std::size_t>(resource)];
  double integral = 0;
  for (std::size_t i = 0; i < tl.steps.size(); ++i) {
    const double t1 = i + 1 < tl.steps.size() ? tl.steps[i + 1].t : end_time_;
    if (t1 > tl.steps[i].t) integral += tl.steps[i].usage * (t1 - tl.steps[i].t);
  }
  return integral;
}

double ResourceCollector::max_utilization(int resource) const {
  const auto& tl = timelines_[static_cast<std::size_t>(resource)];
  double max_util = 0;
  for (const auto& step : tl.steps) {
    if (step.capacity > 0) max_util = std::max(max_util, step.usage / step.capacity);
  }
  return max_util;
}

double ResourceCollector::saturated_seconds(int resource) const {
  const auto& tl = timelines_[static_cast<std::size_t>(resource)];
  double total = 0;
  for (const auto& iv : tl.saturated) {
    const double t1 = iv.t1 < 0 ? end_time_ : iv.t1;
    if (t1 > iv.t0) total += t1 - iv.t0;
  }
  return total;
}

std::vector<ResourceCollector::Bottleneck> ResourceCollector::bottlenecks() const {
  std::vector<Bottleneck> ranked;
  for (int r = 0; r < static_cast<int>(timelines_.size()); ++r) {
    const double sat = saturated_seconds(r);
    if (sat <= 0) continue;
    ranked.push_back({r, sat, distinct_flows(r)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Bottleneck& a, const Bottleneck& b) {
    if (a.saturated_s != b.saturated_s) return a.saturated_s > b.saturated_s;
    if (a.flows != b.flows) return a.flows > b.flows;
    return a.resource < b.resource;
  });
  return ranked;
}

ResourceCollector::Summary ResourceCollector::summary() const {
  Summary s;
  const auto ranked = bottlenecks();
  if (!ranked.empty()) {
    s.top_bottleneck = timeline(ranked.front().resource).name;
    s.bottleneck_saturated_s = ranked.front().saturated_s;
  }
  for (int r = 0; r < static_cast<int>(timelines_.size()); ++r) {
    if (timeline(r).kind == ResourceKind::kLink) {
      s.max_link_utilization = std::max(s.max_link_utilization, max_utilization(r));
    }
  }
  return s;
}

std::string ResourceCollector::report(std::size_t top_n) const {
  std::ostringstream out;
  out << "resource utilization: " << timelines_.size() << " resources, " << snapshot_count_
      << " snapshots over " << std::fixed << std::setprecision(9) << end_time_ << " s\n";
  const auto ranked = bottlenecks();
  if (ranked.empty()) {
    out << "  no resource ever saturated\n";
  } else {
    out << "  top bottlenecks (by saturated time):\n";
    for (std::size_t i = 0; i < ranked.size() && i < top_n; ++i) {
      const auto& b = ranked[i];
      const auto& tl = timeline(b.resource);
      out << "    " << (i + 1) << ". " << resource_kind_name(tl.kind) << " " << tl.name
          << ": saturated " << std::setprecision(6) << b.saturated_s << " s ("
          << tl.saturated.size() << " intervals, " << b.flows << " flows), max util "
          << std::setprecision(1) << max_utilization(b.resource) * 100 << "%\n";
    }
    // Attribution for the dominant bottleneck: who was pinned on its longest
    // saturated interval, and at what share.
    const auto& top = timeline(ranked.front().resource);
    const SaturationInterval* longest = nullptr;
    for (const auto& iv : top.saturated) {
      const double t1 = iv.t1 < 0 ? end_time_ : iv.t1;
      if (!longest ||
          t1 - iv.t0 > (longest->t1 < 0 ? end_time_ : longest->t1) - longest->t0) {
        longest = &iv;
      }
    }
    if (longest != nullptr) {
      out << "  attribution on " << top.name << " [" << std::setprecision(6) << longest->t0
          << ", " << (longest->t1 < 0 ? end_time_ : longest->t1) << ") s:";
      std::size_t shown = 0;
      for (const auto& [flow, share] : longest->shares) {
        if (shown++ == 6) {
          out << " … +" << (longest->shares.size() - 6) << " more";
          break;
        }
        out << " " << flow_label(flow) << "=" << std::setprecision(3) << std::scientific
            << share << std::fixed;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace smpi::obs
