// Declarative failure model — calendar-driven host crashes and link faults.
//
// A FaultSpec is parsed from JSON (inline or a file): an explicit `events`
// list pinning crashes/recoveries/degradations to simulated dates, plus an
// optional `random` block that draws faults from a seeded generator using
// the same Xoshiro mix discipline as the workload generator, so a fault run
// is bit-reproducible per seed and independent of everything else the run
// does with randomness.
//
// The sim layer knows nothing about platform files; callers resolve target
// names to resource indices through a TargetIndex of callbacks, and the
// FaultModel then schedules the resolved events on the engine's calendar.
// When an event fires the model calls the registered host/link hooks — the
// surf models implement the actual availability semantics (failing in-flight
// actions, rejecting new ones, re-solving on recovery).
//
// With an empty spec no FaultModel should be constructed at all: the
// calendar stream and therefore every simulated time stays bit-identical to
// a fault-free build (the replay-equivalence tests are the canary).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/model.hpp"

namespace smpi::util {
class JsonValue;
}

namespace smpi::sim {

// What the MPI layer does when an operation it is blocked on fails:
//  kAbort  — tear the rank down with a diagnostic (MPI_ERRORS_ARE_FATAL).
//  kDetect — leave the rank blocked forever so the simulated-deadlock
//            detector reports the full wait-for state instead.
enum class FailurePolicy { kAbort, kDetect };

struct FaultEvent {
  enum class Kind { kHostCrash, kHostRecover, kLinkFail, kLinkRecover, kLinkDegrade };
  Kind kind = Kind::kHostCrash;
  double time = 0;
  std::string target;  // host or link name (explicit events only)
  double factor = 1;   // link_degrade: remaining capacity fraction in (0, 1]
};

// Seeded-random fault generation. Streams are fixed (0 = host crashes,
// 1 = link failures, 2 = link degradations) and each fault draws from its
// own mix(seed, stream, index)-seeded generator, so adding one fault class
// never perturbs the draws of another.
struct RandomFaults {
  std::uint64_t seed = 0;
  long long host_crashes = 0;
  long long link_failures = 0;
  long long link_degradations = 0;
  double time_min = 0;  // faults drawn uniformly in [time_min, time_max)
  double time_max = 1;
  double mttr = 0;  // >0: each fault recovers after mttr * uniform(0.5, 1.5)
  double degrade_min = 0.1;  // degradation factor drawn in [degrade_min, degrade_max)
  double degrade_max = 0.9;
};

struct FaultSpec {
  FailurePolicy policy = FailurePolicy::kAbort;
  std::vector<FaultEvent> events;
  bool has_random = false;
  RandomFaults random;

  bool empty() const { return events.empty() && !has_random; }

  static FaultSpec parse(const util::JsonValue& root);
  // `text` starting with '{' parses as inline JSON, anything else as a path.
  static FaultSpec parse_text(const std::string& text);
  static FaultSpec parse_file(const std::string& path);
};

// Name-resolution indirection so sim/ stays independent of platform/.
// find_* return -1 for unknown names (resolution then fails loudly).
struct TargetIndex {
  int host_count = 0;
  int link_count = 0;
  std::function<int(const std::string&)> find_host;
  std::function<int(const std::string&)> find_link;
};

// One calendar-ready fault: explicit events resolved by name, random events
// drawn from the seeded streams, all merged and stably time-sorted.
struct ResolvedFault {
  FaultEvent::Kind kind = FaultEvent::Kind::kHostCrash;
  double time = 0;
  int target = -1;  // host index or link index, by kind
  double factor = 1;
};

std::vector<ResolvedFault> resolve_faults(const FaultSpec& spec, const TargetIndex& index);

// Replays a resolved fault list on the engine calendar and fans each firing
// out to the availability hooks. Construct, add_model(), set hooks, arm().
class FaultModel : public Model {
 public:
  using HostHook = std::function<void(int host, bool up)>;
  using LinkHook = std::function<void(int link, bool up, double factor)>;

  explicit FaultModel(std::vector<ResolvedFault> faults) : faults_(std::move(faults)) {}

  void set_host_hook(HostHook hook) { host_hook_ = std::move(hook); }
  void set_link_hook(LinkHook hook) { link_hook_ = std::move(hook); }

  // Schedules every fault on the calendar; requires add_model() first.
  void arm();

  void on_calendar_event(double now, std::uint64_t tag) override;

  const std::vector<ResolvedFault>& faults() const { return faults_; }

 private:
  std::vector<ResolvedFault> faults_;
  HostHook host_hook_;
  LinkHook link_hook_;
};

const char* fault_kind_name(FaultEvent::Kind kind);

}  // namespace smpi::sim
