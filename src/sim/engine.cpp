#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace smpi::sim {

SMPI_LOG_CATEGORY(log_sim, "sim");

namespace {
Engine* g_current_engine = nullptr;
}  // namespace

void Model::request_settle() {
  SMPI_REQUIRE(engine_ != nullptr, "model not registered with an engine (add_model)");
  engine_->request_settle(this);
}

// ---------------------------------------------------------------------------
// Activity
// ---------------------------------------------------------------------------

Activity::Activity(std::string label) : label_(std::move(label)) {}

Activity::State Activity::wait() {
  if (!completed()) {
    Engine* engine = Engine::current();
    SMPI_REQUIRE(engine != nullptr && engine->current_actor() != nullptr,
                 "Activity::wait outside actor context");
    engine->wait_on(*this);
  }
  return state_;
}

void Activity::on_completion(CompletionFn callback) {
  if (completed()) {
    callback(*this);
  } else {
    callbacks_.push_back(std::move(callback));
  }
}

void Activity::finish(State state) {
  SMPI_REQUIRE(state != State::kRunning, "finish() with kRunning");
  if (completed()) return;  // idempotent (cancel after completion, etc.)
  state_ = state;
  Engine* engine = Engine::current();
  finish_time_ = engine != nullptr ? engine->now() : 0;
  if (engine != nullptr) {
    for (Actor* actor : waiters_) engine->wake(actor);
  }
  waiters_.clear();
  // Callbacks may start new activities or finish other ones — steal the
  // list before firing so re-registrations land on a clean vector. Most
  // activities carry no callback; skip the steal for those.
  if (!callbacks_.empty()) {
    auto callbacks = std::move(callbacks_);
    for (auto& cb : callbacks) cb(*this);
  }
}

ActivityPtr new_activity(const char* label) {
  Engine* engine = Engine::current();
  if (engine != nullptr && engine->pooling()) {
    return std::allocate_shared<Activity>(PoolAllocator<Activity>(&engine->object_pool()),
                                          label);
  }
  return std::make_shared<Activity>(label);
}

// ---------------------------------------------------------------------------
// Actor
// ---------------------------------------------------------------------------

Actor::Actor(Engine* engine, int pid, int node, std::string name)
    : engine_(engine), pid_(pid), node_(node), name_(std::move(name)) {}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      context_factory_(ContextFactory::make(config_.context_backend, config_.stack_bytes)) {
  SMPI_REQUIRE(g_current_engine == nullptr, "only one Engine may exist at a time");
  g_current_engine = this;
}

Engine::~Engine() {
  // Destroy actors before anything else so their contexts can unwind while
  // the engine still exists.
  shutdown_actors();
  g_current_engine = nullptr;
}

void Engine::shutdown_actors() {
  actors_.clear();
  live_actors_ = 0;
  current_ = nullptr;
}

Engine* Engine::current() { return g_current_engine; }

Actor* Engine::spawn(std::string name, int node, std::function<void()> body) {
  auto actor = std::unique_ptr<Actor>(new Actor(this, static_cast<int>(actors_.size()), node,
                                                std::move(name)));
  Actor* raw = actor.get();
  actor->context_ = context_factory_->create([this, raw, body = std::move(body)] {
    body();
    raw->state_ = Actor::State::kDead;
  });
  runnable_push(raw);
  actors_.push_back(std::move(actor));
  ++live_actors_;
  return raw;
}

void Engine::add_model(std::shared_ptr<Model> model) {
  model->engine_ = this;
  model->calendar_ = &calendar_;
  models_.push_back(std::move(model));
}

void Engine::request_settle(Model* model) {
  if (model->settle_pending_) return;
  model->settle_pending_ = true;
  settle_queue_.push_back(model);
}

void Engine::drain_settles() {
  // Index loop: a settle hook may legitimately queue further settles.
  for (std::size_t i = 0; i < settle_queue_.size(); ++i) {
    Model* model = settle_queue_[i];
    model->settle_pending_ = false;
    model->on_settle(now_);
  }
  settle_queue_.clear();
}

void Engine::run_actor(Actor* actor) {
  if (!actor->alive()) return;
  current_ = actor;
  actor->state_ = Actor::State::kRunning;
  {
    // One "call" per context switch into an actor; seconds = host time spent
    // inside the resumed slice (includes the rank's user code).
    obs::ProfScope prof(obs::ProfKey::kContextSwitch);
    actor->context_->resume();
  }
  current_ = nullptr;
  // Actors only die inside their own resume (the body returning), so this is
  // the single place the live count can drop.
  if (actor->state_ == Actor::State::kDead || actor->context_->done()) {
    actor->state_ = Actor::State::kDead;
    SMPI_ENSURE(live_actors_ > 0, "live actor count underflow");
    --live_actors_;
  }
}

void Engine::run() {
  SMPI_REQUIRE(!running_, "Engine::run is not reentrant");
  running_ = true;
  while (true) {
    // Phase 1: run every runnable actor until it blocks or dies. Actors made
    // runnable during this phase (e.g. woken by a completion triggered from
    // another actor) run within the same phase, at the same date.
    while (!runnable_empty() && !stop_requested_) {
      Actor* actor = runnable_pop();
      run_actor(actor);
    }
    // A stop request (abort) freezes the world here: actors that unwound
    // have freed their frames, and pending completions/timers hold raw
    // pointers into them — dispatching anything further would be a
    // use-after-free. Remaining live actors are torn down by ~Engine.
    if (stop_requested_) break;
    if (live_actor_count() == 0) break;
    // Phase 2: let time flow to the next event.
    if (!advance_time()) {
      std::ostringstream os;
      os << "deadlock at t=" << now_ << ": " << live_actor_count()
         << " actor(s) blocked forever:";
      for (const auto& actor : actors_) {
        if (actor->alive()) os << ' ' << actor->name();
      }
      if (deadlock_reporter_) {
        std::string detail = deadlock_reporter_();
        if (!detail.empty()) os << '\n' << detail;
      }
      running_ = false;
      throw DeadlockError(os.str());
    }
  }
  running_ = false;
}

bool Engine::advance_time() {
  obs::ProfScope prof(obs::ProfKey::kCalendarAdvance);
  // Let models fold the batch of mutations made since the last step (flow
  // arrivals/departures at the current date) into fresh calendar entries
  // before we look at what comes next.
  drain_settles();
  double next = calendar_.next_date();
  if (!timers_.empty()) next = std::min(next, timers_.top().date);
  if (!std::isfinite(next)) return false;
  SMPI_ENSURE(next >= now_, "time went backwards");
  if (config_.max_sim_time > 0 && next > config_.max_sim_time) {
    std::ostringstream os;
    os << "simulated-time limit exceeded: next event at t=" << next << " is past --max-sim-time="
       << config_.max_sim_time << " (" << live_actor_count() << " actor(s) still live)";
    running_ = false;
    throw TimeLimitError(os.str());
  }
  now_ = next;
  // Dispatch everything due at the new date as one merged stream in strict
  // global (date, creation) order — calendar handles and timer seqs come
  // from the same counter, so the comparison is exact. Handling an entry
  // may push new due entries (e.g. a completion re-solve that drops another
  // activity's remaining work to zero); re-peeking each round picks those
  // up within the same step.
  while (true) {
    double cal_date = 0;
    EventCalendar::Handle cal_order = 0;
    const bool cal_due = calendar_.peek(&cal_date, &cal_order) && cal_date <= now_;
    const bool timer_due = !timers_.empty() && timers_.top().date <= now_;
    if (cal_due &&
        (!timer_due || cal_date < timers_.top().date ||
         (cal_date == timers_.top().date && cal_order < timers_.top().seq))) {
      EventCalendar::Fired fired;
      calendar_.pop_due(now_, &fired);
      fired.owner->on_calendar_event(now_, fired.tag);
    } else if (timer_due) {
      // priority_queue::top() is const; moving out is safe because pop()
      // follows immediately (the moved-from callback is never compared).
      auto callback = std::move(const_cast<Timer&>(timers_.top()).callback);
      timers_.pop();
      callback();
    } else {
      break;
    }
  }
  return true;
}

void Engine::suspend_current() {
  Actor* actor = current_;
  SMPI_REQUIRE(actor != nullptr, "no current actor to suspend");
  actor->state_ = Actor::State::kBlocked;
  actor->context_->suspend();
  // Back from the kernel: we are running again.
  actor->state_ = Actor::State::kRunning;
}

void Engine::wait_on(Activity& activity) {
  if (activity.completed()) return;
  activity.waiters_.push_back(current_);
  suspend_current();
}

void Engine::sleep_for(double duration) {
  SMPI_REQUIRE(duration >= 0, "negative sleep");
  auto token = new_activity("sleep");
  add_timer(now_ + duration, [token] { token->finish(Activity::State::kDone); });
  wait_on(*token);
}

void Engine::yield() {
  Actor* actor = current_;
  SMPI_REQUIRE(actor != nullptr, "yield outside actor context");
  // Stay kReady (not kBlocked) so a stray wake() cannot enqueue us twice.
  actor->state_ = Actor::State::kReady;
  runnable_push(actor);
  actor->context_->suspend();
  actor->state_ = Actor::State::kRunning;
}

void Engine::add_timer(double date, TimerFn callback) {
  SMPI_REQUIRE(date >= now_, "timer in the past");
  timers_.push(Timer{date, event_seq_++, std::move(callback)});
  ++timers_created_;
}

void Engine::wake(Actor* actor) {
  // Only a blocked actor can be woken; an actor that is already queued
  // (kReady) or running must not be enqueued a second time.
  if (!actor->alive() || actor->state_ != Actor::State::kBlocked) return;
  actor->state_ = Actor::State::kReady;
  runnable_push(actor);
}

void Engine::trace(const std::string& label) {
  if (!config_.trace_events) return;
  auto mix = [this](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      trace_hash_state_ ^= bytes[i];
      trace_hash_state_ *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(&now_, sizeof now_);
  mix(label.data(), label.size());
  SMPI_LOG_DEBUG(log_sim, "trace t=" << now_ << " " << label);
}

std::uint64_t Engine::trace_hash() const { return trace_hash_state_; }

}  // namespace smpi::sim
