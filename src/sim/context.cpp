#include "sim/context.hpp"

#include <ucontext.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

// ---------------------------------------------------------------------------
// raw backend (x86-64 Linux): hand-rolled stack switch.
//
// glibc's swapcontext makes a sigprocmask *syscall* on every switch to
// save/restore the signal mask the simulation never touches. At two context
// switches per simulated block/wake, a 1024-rank collective spends half its
// wall-clock inside that syscall. The raw switch saves exactly the
// callee-saved registers the SysV ABI requires and swaps %rsp — ~20 ns
// instead of ~450 ns, no kernel involvement (SimGrid ships the same idea as
// its "raw" context factory).
// ---------------------------------------------------------------------------
#if defined(__x86_64__) && defined(__linux__)
#define SMPI_HAVE_RAW_CONTEXT 1

extern "C" {
// Pushes the callee-saved frame on the current stack, stores %rsp to
// *save_sp, installs restore_sp and pops the frame there.
void smpi_raw_swap(void** save_sp, void* restore_sp);
// First-activation shim: the primed frame "returns" here with the context
// pointer in %r12; moves it into %rdi and calls the C++ trampoline.
void smpi_raw_boot();
void smpi_raw_trampoline(void* context);
}

asm(".text\n"
    ".globl smpi_raw_swap\n"
    ".hidden smpi_raw_swap\n"
    ".type smpi_raw_swap,@function\n"
    "smpi_raw_swap:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size smpi_raw_swap,.-smpi_raw_swap\n"
    ".globl smpi_raw_boot\n"
    ".hidden smpi_raw_boot\n"
    ".type smpi_raw_boot,@function\n"
    "smpi_raw_boot:\n"
    "  movq %r12, %rdi\n"
    "  callq smpi_raw_trampoline\n"
    ".size smpi_raw_boot,.-smpi_raw_boot\n");
#endif  // __x86_64__ && __linux__

namespace smpi::sim {
namespace {

// ---------------------------------------------------------------------------
// ucontext backend
// ---------------------------------------------------------------------------

class UcontextContext final : public Context {
 public:
  UcontextContext(std::function<void()> body, std::size_t stack_bytes)
      : body_(std::move(body)), stack_(stack_bytes) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.data();
    ctx_.uc_stack.ss_size = stack_.size();
    ctx_.uc_link = nullptr;
    // makecontext only passes ints portably; smuggle `this` as two halves.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&UcontextContext::trampoline), 2,
                static_cast<unsigned>(self >> 32), static_cast<unsigned>(self & 0xffffffffu));
  }

  ~UcontextContext() override {
    if (!done_ && started_) {
      // Let the context unwind its stack (runs destructors of locals).
      request_kill();
      resume();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    started_ = true;
    swapcontext(&kernel_ctx_, &ctx_);
  }

  void suspend() override {
    swapcontext(&ctx_, &kernel_ctx_);
    if (kill_requested_) throw ForcedExit{};
  }

 private:
  static void trampoline(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<UcontextContext*>(
        (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
    if (!self->kill_requested_) {
      try {
        self->body_();
      } catch (const ForcedExit&) {
        // normal teardown path
      }
    }
    self->done_ = true;
    swapcontext(&self->ctx_, &self->kernel_ctx_);
    SMPI_UNREACHABLE("resumed a terminated context");
  }

  std::function<void()> body_;
  std::vector<unsigned char> stack_;
  ucontext_t ctx_{};
  ucontext_t kernel_ctx_{};
  bool started_ = false;
};

class UcontextFactory final : public ContextFactory {
 public:
  explicit UcontextFactory(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<UcontextContext>(std::move(body), stack_bytes_);
  }
  std::string name() const override { return "ucontext"; }

 private:
  std::size_t stack_bytes_;
};

#if SMPI_HAVE_RAW_CONTEXT

class RawContext final : public Context {
 public:
  RawContext(std::function<void()> body, std::size_t stack_bytes)
      : body_(std::move(body)), stack_(stack_bytes < kMinStack ? kMinStack : stack_bytes) {
    // Prime the stack so the first swap-in pops the callee-saved frame and
    // "returns" into smpi_raw_boot with %r12 = this. Stack top is 16-byte
    // aligned, so inside smpi_raw_boot %rsp % 16 == 0 and the ABI alignment
    // at the trampoline call is correct.
    auto top = reinterpret_cast<std::uintptr_t>(stack_.data() + stack_.size());
    top &= ~static_cast<std::uintptr_t>(0xf);
    auto* slots = reinterpret_cast<void**>(top);
    slots[-1] = reinterpret_cast<void*>(&smpi_raw_boot);  // ret target
    slots[-2] = nullptr;                                  // rbp
    slots[-3] = nullptr;                                  // rbx
    slots[-4] = this;                                     // r12
    slots[-5] = nullptr;                                  // r13
    slots[-6] = nullptr;                                  // r14
    slots[-7] = nullptr;                                  // r15
    sp_ = static_cast<void*>(&slots[-7]);
  }

  ~RawContext() override {
    if (!done_ && started_) {
      // Let the context unwind its stack (runs destructors of locals).
      request_kill();
      resume();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    started_ = true;
    smpi_raw_swap(&kernel_sp_, sp_);
  }

  void suspend() override {
    smpi_raw_swap(&sp_, kernel_sp_);
    if (kill_requested_) throw ForcedExit{};
  }

  // First activation (via smpi_raw_boot); runs on the fiber stack.
  void boot_entry() {
    if (!kill_requested_) {
      try {
        body_();
      } catch (const ForcedExit&) {
        // normal teardown path
      }
    }
    done_ = true;
    smpi_raw_swap(&sp_, kernel_sp_);
    SMPI_UNREACHABLE("resumed a terminated context");
  }

 private:
  static constexpr std::size_t kMinStack = 16 * 1024;

  std::function<void()> body_;
  std::vector<unsigned char> stack_;
  void* sp_ = nullptr;         // fiber stack pointer while suspended
  void* kernel_sp_ = nullptr;  // kernel stack pointer while the fiber runs
  bool started_ = false;
};

class RawFactory final : public ContextFactory {
 public:
  explicit RawFactory(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<RawContext>(std::move(body), stack_bytes_);
  }
  std::string name() const override { return "raw"; }

 private:
  std::size_t stack_bytes_;
};

#endif  // SMPI_HAVE_RAW_CONTEXT

// ---------------------------------------------------------------------------
// thread backend: one OS thread per context, but strictly one runs at a time
// (ping-pong handoff through a mutex + condition variable).
// ---------------------------------------------------------------------------

class ThreadContext final : public Context {
 public:
  explicit ThreadContext(std::function<void()> body) : body_(std::move(body)) {}

  ~ThreadContext() override {
    if (thread_.joinable()) {
      if (!done_) {
        request_kill();
        resume();  // wakes the thread; it unwinds via ForcedExit
      }
      thread_.join();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    std::unique_lock<std::mutex> lock(mutex_);
    if (!thread_.joinable()) thread_ = std::thread([this] { run(); });
    turn_ = Turn::kActor;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kKernel; });
  }

  void suspend() override {
    std::unique_lock<std::mutex> lock(mutex_);
    turn_ = Turn::kKernel;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    if (kill_requested_) throw ForcedExit{};
  }

 private:
  enum class Turn { kKernel, kActor };

  void run() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    }
    if (!kill_requested_) {
      try {
        body_();
      } catch (const ForcedExit&) {
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_ = true;
    turn_ = Turn::kKernel;
    cv_.notify_all();
  }

  std::function<void()> body_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kKernel;
};

class ThreadFactory final : public ContextFactory {
 public:
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<ThreadContext>(std::move(body));
  }
  std::string name() const override { return "thread"; }
};

}  // namespace

#if SMPI_HAVE_RAW_CONTEXT
// Reached once per context via smpi_raw_boot; C linkage so the asm shim can
// name it.
extern "C" void smpi_raw_trampoline(void* context) {
  static_cast<RawContext*>(context)->boot_entry();
}
#endif

std::unique_ptr<ContextFactory> ContextFactory::make(const std::string& backend,
                                                     std::size_t stack_bytes) {
  std::string choice = backend;
  if (choice.empty()) {
    const char* env = std::getenv("SMPI_CONTEXT_BACKEND");
#if SMPI_HAVE_RAW_CONTEXT
    choice = (env != nullptr) ? env : "raw";
#else
    choice = (env != nullptr) ? env : "ucontext";
#endif
  }
#if SMPI_HAVE_RAW_CONTEXT
  if (choice == "raw") return std::make_unique<RawFactory>(stack_bytes);
#else
  // Portable fallback when the hand-rolled switch is unavailable.
  if (choice == "raw") return std::make_unique<UcontextFactory>(stack_bytes);
#endif
  if (choice == "ucontext") return std::make_unique<UcontextFactory>(stack_bytes);
  if (choice == "thread") return std::make_unique<ThreadFactory>();
  SMPI_REQUIRE(false, "unknown context backend '" + choice + "'");
  return nullptr;
}

}  // namespace smpi::sim
