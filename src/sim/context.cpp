#include "sim/context.hpp"

#include <ucontext.h>

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

// ---------------------------------------------------------------------------
// raw backend (x86-64 and aarch64 Linux): hand-rolled stack switch.
//
// glibc's swapcontext makes a sigprocmask *syscall* on every switch to
// save/restore the signal mask the simulation never touches. At two context
// switches per simulated block/wake, a 1024-rank collective spends half its
// wall-clock inside that syscall. The raw switch saves exactly the
// callee-saved registers the platform ABI requires and swaps the stack
// pointer — ~20 ns instead of ~450 ns, no kernel involvement (SimGrid ships
// the same idea as its "raw" context factory).
//
//   x86-64 (SysV):  rbp rbx r12-r15, ret address on the stack
//   aarch64 (AAPCS64): x19-x28, fp (x29), lr (x30), and the low halves of
//     v8-v15 (d8-d15) — callers may keep doubles live across the call
//
// Everything else falls back to ucontext.
// ---------------------------------------------------------------------------
#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
#define SMPI_HAVE_RAW_CONTEXT 1

extern "C" {
// Pushes the callee-saved frame on the current stack, stores the stack
// pointer to *save_sp, installs restore_sp and pops the frame there.
void smpi_raw_swap(void** save_sp, void* restore_sp);
// First-activation shim: the primed frame "returns" here with the context
// pointer in a callee-saved register (%r12 / x19); moves it into the
// first-argument register and calls the C++ trampoline.
void smpi_raw_boot();
void smpi_raw_trampoline(void* context);
}
#endif

#if defined(__x86_64__) && defined(__linux__)
asm(".text\n"
    ".globl smpi_raw_swap\n"
    ".hidden smpi_raw_swap\n"
    ".type smpi_raw_swap,@function\n"
    "smpi_raw_swap:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size smpi_raw_swap,.-smpi_raw_swap\n"
    ".globl smpi_raw_boot\n"
    ".hidden smpi_raw_boot\n"
    ".type smpi_raw_boot,@function\n"
    "smpi_raw_boot:\n"
    "  movq %r12, %rdi\n"
    "  callq smpi_raw_trampoline\n"
    ".size smpi_raw_boot,.-smpi_raw_boot\n");
#endif  // __x86_64__ && __linux__

#if defined(__aarch64__) && defined(__linux__)
// Frame layout (160 bytes, 16-aligned): x19..x28 at 0-72, fp/lr at 80/88,
// d8..d15 at 96-152. The primed first-activation frame sets lr to
// smpi_raw_boot and x19 to the context pointer, so the restoring `ret`
// lands in the shim with `this` in a callee-saved register.
asm(".text\n"
    ".globl smpi_raw_swap\n"
    ".hidden smpi_raw_swap\n"
    ".type smpi_raw_swap,%function\n"
    "smpi_raw_swap:\n"
    "  sub sp, sp, #160\n"
    "  stp x19, x20, [sp]\n"
    "  stp x21, x22, [sp, #16]\n"
    "  stp x23, x24, [sp, #32]\n"
    "  stp x25, x26, [sp, #48]\n"
    "  stp x27, x28, [sp, #64]\n"
    "  stp x29, x30, [sp, #80]\n"
    "  stp d8,  d9,  [sp, #96]\n"
    "  stp d10, d11, [sp, #112]\n"
    "  stp d12, d13, [sp, #128]\n"
    "  stp d14, d15, [sp, #144]\n"
    "  mov x9, sp\n"
    "  str x9, [x0]\n"
    "  mov sp, x1\n"
    "  ldp x19, x20, [sp]\n"
    "  ldp x21, x22, [sp, #16]\n"
    "  ldp x23, x24, [sp, #32]\n"
    "  ldp x25, x26, [sp, #48]\n"
    "  ldp x27, x28, [sp, #64]\n"
    "  ldp x29, x30, [sp, #80]\n"
    "  ldp d8,  d9,  [sp, #96]\n"
    "  ldp d10, d11, [sp, #112]\n"
    "  ldp d12, d13, [sp, #128]\n"
    "  ldp d14, d15, [sp, #144]\n"
    "  add sp, sp, #160\n"
    "  ret\n"
    ".size smpi_raw_swap,.-smpi_raw_swap\n"
    ".globl smpi_raw_boot\n"
    ".hidden smpi_raw_boot\n"
    ".type smpi_raw_boot,%function\n"
    "smpi_raw_boot:\n"
    "  mov x0, x19\n"
    "  bl smpi_raw_trampoline\n"
    ".size smpi_raw_boot,.-smpi_raw_boot\n");
#endif  // __aarch64__ && __linux__

// ---------------------------------------------------------------------------
// AddressSanitizer fiber annotations. ASan keeps one shadow ("fake") stack
// per thread; a manual stack switch it cannot see makes it report wild
// stack-buffer-overflow / use-after-return the moment the scheduler resumes
// an actor. Every switch is therefore bracketed with
// __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber in ASan
// builds; the helpers compile to nothing otherwise.
// ---------------------------------------------------------------------------
#if defined(__SANITIZE_ADDRESS__)
#define SMPI_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SMPI_ASAN_FIBERS 1
#endif
#endif

#if defined(SMPI_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* stack_bottom,
                                    std::size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save, const void** stack_bottom_old,
                                     std::size_t* stack_size_old);
}
#endif

namespace smpi::sim {
namespace {

// `save`: where to park this stack's fake-stack pointer while away (nullptr
// on the final switch out of a dying fiber, releasing its fake frames).
inline void asan_start_switch(void** save, const void* target_bottom,
                              std::size_t target_size) {
#if defined(SMPI_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(save, target_bottom, target_size);
#else
  (void)save;
  (void)target_bottom;
  (void)target_size;
#endif
}

// `save`: the pointer parked by the start_switch that last left this stack
// (nullptr on a fiber's first activation). Reports the previous stack's
// bounds through the out-params — how the fiber learns the kernel stack.
inline void asan_finish_switch(void* save, const void** old_bottom, std::size_t* old_size) {
#if defined(SMPI_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(save, old_bottom, old_size);
#else
  (void)save;
  (void)old_bottom;
  (void)old_size;
#endif
}

// ---------------------------------------------------------------------------
// ucontext backend
// ---------------------------------------------------------------------------

class UcontextContext final : public Context {
 public:
  UcontextContext(std::function<void()> body, std::size_t stack_bytes)
      : body_(std::move(body)), stack_(stack_bytes) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.data();
    ctx_.uc_stack.ss_size = stack_.size();
    ctx_.uc_link = nullptr;
    // makecontext only passes ints portably; smuggle `this` as two halves.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&UcontextContext::trampoline), 2,
                static_cast<unsigned>(self >> 32), static_cast<unsigned>(self & 0xffffffffu));
  }

  ~UcontextContext() override {
    if (!done_ && started_) {
      // Let the context unwind its stack (runs destructors of locals).
      request_kill();
      resume();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    started_ = true;
    asan_start_switch(&kernel_fake_stack_, stack_.data(), stack_.size());
    swapcontext(&kernel_ctx_, &ctx_);
    asan_finish_switch(kernel_fake_stack_, nullptr, nullptr);
  }

  void suspend() override {
    asan_start_switch(&fiber_fake_stack_, kernel_stack_bottom_, kernel_stack_size_);
    swapcontext(&ctx_, &kernel_ctx_);
    asan_finish_switch(fiber_fake_stack_, &kernel_stack_bottom_, &kernel_stack_size_);
    if (kill_requested_) throw ForcedExit{};
  }

 private:
  static void trampoline(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<UcontextContext*>(
        (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
    // First activation: no parked fake stack yet; learn the kernel stack's
    // bounds for the suspend() switches.
    asan_finish_switch(nullptr, &self->kernel_stack_bottom_, &self->kernel_stack_size_);
    if (!self->kill_requested_) {
      try {
        self->body_();
      } catch (const ForcedExit&) {
        // normal teardown path
      }
    }
    self->done_ = true;
    // nullptr save: this fiber never runs again — release its fake frames.
    asan_start_switch(nullptr, self->kernel_stack_bottom_, self->kernel_stack_size_);
    swapcontext(&self->ctx_, &self->kernel_ctx_);
    SMPI_UNREACHABLE("resumed a terminated context");
  }

  std::function<void()> body_;
  std::vector<unsigned char> stack_;
  ucontext_t ctx_{};
  ucontext_t kernel_ctx_{};
  bool started_ = false;
  // ASan fiber-annotation state (unused outside sanitized builds).
  void* kernel_fake_stack_ = nullptr;
  void* fiber_fake_stack_ = nullptr;
  const void* kernel_stack_bottom_ = nullptr;
  std::size_t kernel_stack_size_ = 0;
};

class UcontextFactory final : public ContextFactory {
 public:
  explicit UcontextFactory(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<UcontextContext>(std::move(body), stack_bytes_);
  }
  std::string name() const override { return "ucontext"; }

 private:
  std::size_t stack_bytes_;
};

#if SMPI_HAVE_RAW_CONTEXT

class RawContext final : public Context {
 public:
  RawContext(std::function<void()> body, std::size_t stack_bytes)
      : body_(std::move(body)), stack_(stack_bytes < kMinStack ? kMinStack : stack_bytes) {
    // Prime the stack so the first swap-in pops the callee-saved frame and
    // "returns" into smpi_raw_boot with the context pointer in a
    // callee-saved register. Stack top is 16-byte aligned, so inside
    // smpi_raw_boot the stack meets the ABI alignment at the trampoline
    // call.
    auto top = reinterpret_cast<std::uintptr_t>(stack_.data() + stack_.size());
    top &= ~static_cast<std::uintptr_t>(0xf);
#if defined(__x86_64__)
    auto* slots = reinterpret_cast<void**>(top);
    slots[-1] = reinterpret_cast<void*>(&smpi_raw_boot);  // ret target
    slots[-2] = nullptr;                                  // rbp
    slots[-3] = nullptr;                                  // rbx
    slots[-4] = this;                                     // r12
    slots[-5] = nullptr;                                  // r13
    slots[-6] = nullptr;                                  // r14
    slots[-7] = nullptr;                                  // r15
    sp_ = static_cast<void*>(&slots[-7]);
#elif defined(__aarch64__)
    // One 160-byte frame below the top (see the asm layout): lr at offset
    // 88 routes the restoring `ret` into smpi_raw_boot, x19 at offset 0
    // carries `this`; everything else (including fp and d8-d15) is zero.
    auto* frame = reinterpret_cast<unsigned char*>(top - 160);
    std::memset(frame, 0, 160);
    *reinterpret_cast<void**>(frame + 0) = this;                                  // x19
    *reinterpret_cast<void**>(frame + 88) = reinterpret_cast<void*>(&smpi_raw_boot);  // lr
    sp_ = static_cast<void*>(frame);
#else
#error "raw context backend enabled on an unsupported architecture"
#endif
  }

  ~RawContext() override {
    if (!done_ && started_) {
      // Let the context unwind its stack (runs destructors of locals).
      request_kill();
      resume();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    started_ = true;
    asan_start_switch(&kernel_fake_stack_, stack_.data(), stack_.size());
    smpi_raw_swap(&kernel_sp_, sp_);
    asan_finish_switch(kernel_fake_stack_, nullptr, nullptr);
  }

  void suspend() override {
    asan_start_switch(&fiber_fake_stack_, kernel_stack_bottom_, kernel_stack_size_);
    smpi_raw_swap(&sp_, kernel_sp_);
    asan_finish_switch(fiber_fake_stack_, &kernel_stack_bottom_, &kernel_stack_size_);
    if (kill_requested_) throw ForcedExit{};
  }

  // First activation (via smpi_raw_boot); runs on the fiber stack.
  void boot_entry() {
    // No parked fake stack yet; learn the kernel stack's bounds for the
    // suspend() switches.
    asan_finish_switch(nullptr, &kernel_stack_bottom_, &kernel_stack_size_);
    if (!kill_requested_) {
      try {
        body_();
      } catch (const ForcedExit&) {
        // normal teardown path
      }
    }
    done_ = true;
    // nullptr save: this fiber never runs again — release its fake frames.
    asan_start_switch(nullptr, kernel_stack_bottom_, kernel_stack_size_);
    smpi_raw_swap(&sp_, kernel_sp_);
    SMPI_UNREACHABLE("resumed a terminated context");
  }

 private:
  static constexpr std::size_t kMinStack = 16 * 1024;

  std::function<void()> body_;
  std::vector<unsigned char> stack_;
  void* sp_ = nullptr;         // fiber stack pointer while suspended
  void* kernel_sp_ = nullptr;  // kernel stack pointer while the fiber runs
  bool started_ = false;
  // ASan fiber-annotation state (unused outside sanitized builds).
  void* kernel_fake_stack_ = nullptr;
  void* fiber_fake_stack_ = nullptr;
  const void* kernel_stack_bottom_ = nullptr;
  std::size_t kernel_stack_size_ = 0;
};

class RawFactory final : public ContextFactory {
 public:
  explicit RawFactory(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<RawContext>(std::move(body), stack_bytes_);
  }
  std::string name() const override { return "raw"; }

 private:
  std::size_t stack_bytes_;
};

#endif  // SMPI_HAVE_RAW_CONTEXT

// ---------------------------------------------------------------------------
// thread backend: one OS thread per context, but strictly one runs at a time
// (ping-pong handoff through a mutex + condition variable).
// ---------------------------------------------------------------------------

class ThreadContext final : public Context {
 public:
  explicit ThreadContext(std::function<void()> body) : body_(std::move(body)) {}

  ~ThreadContext() override {
    if (thread_.joinable()) {
      if (!done_) {
        request_kill();
        resume();  // wakes the thread; it unwinds via ForcedExit
      }
      thread_.join();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    std::unique_lock<std::mutex> lock(mutex_);
    if (!thread_.joinable()) thread_ = std::thread([this] { run(); });
    turn_ = Turn::kActor;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kKernel; });
  }

  void suspend() override {
    std::unique_lock<std::mutex> lock(mutex_);
    turn_ = Turn::kKernel;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    if (kill_requested_) throw ForcedExit{};
  }

 private:
  enum class Turn { kKernel, kActor };

  void run() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    }
    if (!kill_requested_) {
      try {
        body_();
      } catch (const ForcedExit&) {
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_ = true;
    turn_ = Turn::kKernel;
    cv_.notify_all();
  }

  std::function<void()> body_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kKernel;
};

class ThreadFactory final : public ContextFactory {
 public:
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<ThreadContext>(std::move(body));
  }
  std::string name() const override { return "thread"; }
};

}  // namespace

#if SMPI_HAVE_RAW_CONTEXT
// Reached once per context via smpi_raw_boot; C linkage so the asm shim can
// name it.
extern "C" void smpi_raw_trampoline(void* context) {
  static_cast<RawContext*>(context)->boot_entry();
}
#endif

std::unique_ptr<ContextFactory> ContextFactory::make(const std::string& backend,
                                                     std::size_t stack_bytes) {
  std::string choice = backend;
  if (choice.empty()) {
    const char* env = std::getenv("SMPI_CONTEXT_BACKEND");
#if SMPI_HAVE_RAW_CONTEXT
    choice = (env != nullptr) ? env : "raw";
#else
    choice = (env != nullptr) ? env : "ucontext";
#endif
  }
#if SMPI_HAVE_RAW_CONTEXT
  if (choice == "raw") return std::make_unique<RawFactory>(stack_bytes);
#else
  // Portable fallback when the hand-rolled switch is unavailable.
  if (choice == "raw") return std::make_unique<UcontextFactory>(stack_bytes);
#endif
  if (choice == "ucontext") return std::make_unique<UcontextFactory>(stack_bytes);
  if (choice == "thread") return std::make_unique<ThreadFactory>();
  SMPI_REQUIRE(false, "unknown context backend '" + choice + "'");
  return nullptr;
}

}  // namespace smpi::sim
