#include "sim/context.hpp"

#include <ucontext.h>

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace smpi::sim {
namespace {

// ---------------------------------------------------------------------------
// ucontext backend
// ---------------------------------------------------------------------------

class UcontextContext final : public Context {
 public:
  UcontextContext(std::function<void()> body, std::size_t stack_bytes)
      : body_(std::move(body)), stack_(stack_bytes) {
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.data();
    ctx_.uc_stack.ss_size = stack_.size();
    ctx_.uc_link = nullptr;
    // makecontext only passes ints portably; smuggle `this` as two halves.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&UcontextContext::trampoline), 2,
                static_cast<unsigned>(self >> 32), static_cast<unsigned>(self & 0xffffffffu));
  }

  ~UcontextContext() override {
    if (!done_ && started_) {
      // Let the context unwind its stack (runs destructors of locals).
      request_kill();
      resume();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    started_ = true;
    swapcontext(&kernel_ctx_, &ctx_);
  }

  void suspend() override {
    swapcontext(&ctx_, &kernel_ctx_);
    if (kill_requested_) throw ForcedExit{};
  }

 private:
  static void trampoline(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<UcontextContext*>(
        (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
    if (!self->kill_requested_) {
      try {
        self->body_();
      } catch (const ForcedExit&) {
        // normal teardown path
      }
    }
    self->done_ = true;
    swapcontext(&self->ctx_, &self->kernel_ctx_);
    SMPI_UNREACHABLE("resumed a terminated context");
  }

  std::function<void()> body_;
  std::vector<unsigned char> stack_;
  ucontext_t ctx_{};
  ucontext_t kernel_ctx_{};
  bool started_ = false;
};

class UcontextFactory final : public ContextFactory {
 public:
  explicit UcontextFactory(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<UcontextContext>(std::move(body), stack_bytes_);
  }
  std::string name() const override { return "ucontext"; }

 private:
  std::size_t stack_bytes_;
};

// ---------------------------------------------------------------------------
// thread backend: one OS thread per context, but strictly one runs at a time
// (ping-pong handoff through a mutex + condition variable).
// ---------------------------------------------------------------------------

class ThreadContext final : public Context {
 public:
  explicit ThreadContext(std::function<void()> body) : body_(std::move(body)) {}

  ~ThreadContext() override {
    if (thread_.joinable()) {
      if (!done_) {
        request_kill();
        resume();  // wakes the thread; it unwinds via ForcedExit
      }
      thread_.join();
    }
  }

  void resume() override {
    SMPI_ENSURE(!done_, "resuming a finished context");
    std::unique_lock<std::mutex> lock(mutex_);
    if (!thread_.joinable()) thread_ = std::thread([this] { run(); });
    turn_ = Turn::kActor;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kKernel; });
  }

  void suspend() override {
    std::unique_lock<std::mutex> lock(mutex_);
    turn_ = Turn::kKernel;
    cv_.notify_all();
    cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    if (kill_requested_) throw ForcedExit{};
  }

 private:
  enum class Turn { kKernel, kActor };

  void run() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return turn_ == Turn::kActor; });
    }
    if (!kill_requested_) {
      try {
        body_();
      } catch (const ForcedExit&) {
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_ = true;
    turn_ = Turn::kKernel;
    cv_.notify_all();
  }

  std::function<void()> body_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kKernel;
};

class ThreadFactory final : public ContextFactory {
 public:
  std::unique_ptr<Context> create(std::function<void()> body) override {
    return std::make_unique<ThreadContext>(std::move(body));
  }
  std::string name() const override { return "thread"; }
};

}  // namespace

std::unique_ptr<ContextFactory> ContextFactory::make(const std::string& backend,
                                                     std::size_t stack_bytes) {
  std::string choice = backend;
  if (choice.empty()) {
    const char* env = std::getenv("SMPI_CONTEXT_BACKEND");
    choice = (env != nullptr) ? env : "ucontext";
  }
  if (choice == "ucontext") return std::make_unique<UcontextFactory>(stack_bytes);
  if (choice == "thread") return std::make_unique<ThreadFactory>();
  SMPI_REQUIRE(false, "unknown context backend '" + choice + "'");
  return nullptr;
}

}  // namespace smpi::sim
