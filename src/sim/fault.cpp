#include "sim/fault.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace smpi::sim {

namespace {

// Stream classes from the registry in util/rng.hpp: every (stream, index)
// pair owns an independent generator, so draws never shift when an
// unrelated fault class changes count.
constexpr std::uint64_t kStreamHostCrash = util::stream_class::kFaultHostCrash;
constexpr std::uint64_t kStreamLinkFail = util::stream_class::kFaultLinkFail;
constexpr std::uint64_t kStreamLinkDegrade = util::stream_class::kFaultLinkDegrade;

FaultEvent::Kind kind_from_name(const std::string& name) {
  if (name == "host_crash") return FaultEvent::Kind::kHostCrash;
  if (name == "host_recover") return FaultEvent::Kind::kHostRecover;
  if (name == "link_fail") return FaultEvent::Kind::kLinkFail;
  if (name == "link_recover") return FaultEvent::Kind::kLinkRecover;
  if (name == "link_degrade") return FaultEvent::Kind::kLinkDegrade;
  SMPI_REQUIRE(false, "fault spec: unknown event kind \"" + name +
                          "\" (expected host_crash, host_recover, link_fail, link_recover, "
                          "or link_degrade)");
  return FaultEvent::Kind::kHostCrash;  // unreachable
}

bool is_host_kind(FaultEvent::Kind kind) {
  return kind == FaultEvent::Kind::kHostCrash || kind == FaultEvent::Kind::kHostRecover;
}

double require_number(const util::JsonValue& obj, const char* key, double fallback,
                      bool* present = nullptr) {
  const util::JsonValue* v = obj.find(key);
  if (present != nullptr) *present = v != nullptr;
  if (v == nullptr) return fallback;
  SMPI_REQUIRE(v->is_number(), std::string("fault spec: \"") + key + "\" must be a number");
  return v->as_number();
}

}  // namespace

const char* fault_kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kHostCrash:
      return "host_crash";
    case FaultEvent::Kind::kHostRecover:
      return "host_recover";
    case FaultEvent::Kind::kLinkFail:
      return "link_fail";
    case FaultEvent::Kind::kLinkRecover:
      return "link_recover";
    case FaultEvent::Kind::kLinkDegrade:
      return "link_degrade";
  }
  return "?";
}

FaultSpec FaultSpec::parse(const util::JsonValue& root) {
  SMPI_REQUIRE(root.is_object(), "fault spec: root must be a JSON object");
  FaultSpec spec;

  if (const util::JsonValue* policy = root.find("policy")) {
    SMPI_REQUIRE(policy->is_string(), "fault spec: \"policy\" must be a string");
    const std::string& name = policy->as_string();
    if (name == "abort") {
      spec.policy = FailurePolicy::kAbort;
    } else if (name == "detect") {
      spec.policy = FailurePolicy::kDetect;
    } else {
      SMPI_REQUIRE(false, "fault spec: policy must be \"abort\" or \"detect\", got \"" + name +
                              "\"");
    }
  }

  if (const util::JsonValue* events = root.find("events")) {
    SMPI_REQUIRE(events->is_array(), "fault spec: \"events\" must be an array");
    for (const util::JsonValue& item : events->items()) {
      SMPI_REQUIRE(item.is_object(), "fault spec: each event must be an object");
      FaultEvent event;
      event.kind = kind_from_name(item.at("kind", "fault event").as_string());
      event.time = item.at("time", "fault event").as_number();
      SMPI_REQUIRE(event.time >= 0, "fault spec: event time must be >= 0");
      const char* target_key = is_host_kind(event.kind) ? "host" : "link";
      const util::JsonValue& target = item.at(target_key, "fault event");
      SMPI_REQUIRE(target.is_string(), std::string("fault spec: event \"") + target_key +
                                           "\" must be a resource name");
      event.target = target.as_string();
      if (event.kind == FaultEvent::Kind::kLinkDegrade) {
        event.factor = item.at("factor", "link_degrade event").as_number();
        SMPI_REQUIRE(event.factor > 0 && event.factor <= 1,
                     "fault spec: link_degrade factor must be in (0, 1]");
      }
      spec.events.push_back(std::move(event));
    }
  }

  if (const util::JsonValue* random = root.find("random")) {
    SMPI_REQUIRE(random->is_object(), "fault spec: \"random\" must be an object");
    spec.has_random = true;
    RandomFaults& r = spec.random;
    double seed = require_number(*random, "seed", 0);
    SMPI_REQUIRE(seed >= 0, "fault spec: random.seed must be >= 0");
    r.seed = static_cast<std::uint64_t>(seed);
    r.host_crashes = static_cast<long long>(require_number(*random, "host_crashes", 0));
    r.link_failures = static_cast<long long>(require_number(*random, "link_failures", 0));
    r.link_degradations = static_cast<long long>(require_number(*random, "link_degradations", 0));
    SMPI_REQUIRE(r.host_crashes >= 0 && r.link_failures >= 0 && r.link_degradations >= 0,
                 "fault spec: random fault counts must be >= 0");
    r.time_min = require_number(*random, "time_min", 0);
    r.time_max = require_number(*random, "time_max", 1);
    SMPI_REQUIRE(r.time_min >= 0 && r.time_max >= r.time_min,
                 "fault spec: need 0 <= time_min <= time_max");
    r.mttr = require_number(*random, "mttr", 0);
    SMPI_REQUIRE(r.mttr >= 0, "fault spec: random.mttr must be >= 0");
    r.degrade_min = require_number(*random, "degrade_min", 0.1);
    r.degrade_max = require_number(*random, "degrade_max", 0.9);
    SMPI_REQUIRE(r.degrade_min > 0 && r.degrade_max <= 1 && r.degrade_min <= r.degrade_max,
                 "fault spec: need 0 < degrade_min <= degrade_max <= 1");
  }

  return spec;
}

FaultSpec FaultSpec::parse_text(const std::string& text) {
  std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{') {
    return parse(util::parse_json(text, "fault spec"));
  }
  return parse_file(text);
}

FaultSpec FaultSpec::parse_file(const std::string& path) {
  return parse(util::parse_json_file(path));
}

std::vector<ResolvedFault> resolve_faults(const FaultSpec& spec, const TargetIndex& index) {
  std::vector<ResolvedFault> resolved;

  for (const FaultEvent& event : spec.events) {
    ResolvedFault fault;
    fault.kind = event.kind;
    fault.time = event.time;
    fault.factor = event.factor;
    if (is_host_kind(event.kind)) {
      fault.target = index.find_host ? index.find_host(event.target) : -1;
      SMPI_REQUIRE(fault.target >= 0,
                   "fault spec: unknown host \"" + event.target + "\"");
    } else {
      fault.target = index.find_link ? index.find_link(event.target) : -1;
      SMPI_REQUIRE(fault.target >= 0,
                   "fault spec: unknown link \"" + event.target + "\"");
    }
    resolved.push_back(fault);
  }

  if (spec.has_random) {
    const RandomFaults& r = spec.random;
    SMPI_REQUIRE(r.host_crashes == 0 || index.host_count > 0,
                 "fault spec: random host crashes need at least one host");
    SMPI_REQUIRE(r.link_failures == 0 || index.link_count > 0,
                 "fault spec: random link failures need at least one shared link");
    SMPI_REQUIRE(r.link_degradations == 0 || index.link_count > 0,
                 "fault spec: random link degradations need at least one shared link");

    auto draw = [&](std::uint64_t stream, long long count, FaultEvent::Kind fail_kind,
                    FaultEvent::Kind recover_kind, int target_count, bool degrade) {
      for (long long i = 0; i < count; ++i) {
        util::Xoshiro256StarStar rng(
            util::mix_stream(r.seed, stream, static_cast<std::uint64_t>(i)));
        ResolvedFault fault;
        fault.kind = fail_kind;
        fault.target =
            static_cast<int>(rng.next_in_range(0, static_cast<std::uint64_t>(target_count - 1)));
        fault.time = r.time_min + rng.next_double() * (r.time_max - r.time_min);
        if (degrade) {
          fault.factor = r.degrade_min + rng.next_double() * (r.degrade_max - r.degrade_min);
        }
        resolved.push_back(fault);
        // Always draw the recovery variate, so toggling mttr on/off never
        // shifts which host/time the next fault class sees.
        double repair = r.mttr * (0.5 + rng.next_double());
        if (r.mttr > 0) {
          ResolvedFault recover;
          recover.kind = recover_kind;
          recover.target = fault.target;
          recover.time = fault.time + repair;
          resolved.push_back(recover);
        }
      }
    };
    draw(kStreamHostCrash, r.host_crashes, FaultEvent::Kind::kHostCrash,
         FaultEvent::Kind::kHostRecover, index.host_count, /*degrade=*/false);
    draw(kStreamLinkFail, r.link_failures, FaultEvent::Kind::kLinkFail,
         FaultEvent::Kind::kLinkRecover, index.link_count, /*degrade=*/false);
    draw(kStreamLinkDegrade, r.link_degradations, FaultEvent::Kind::kLinkDegrade,
         FaultEvent::Kind::kLinkRecover, index.link_count, /*degrade=*/true);
  }

  // Stable sort: equal-date faults fire in spec order (explicit before
  // random, streams in fixed order), which the calendar then preserves.
  std::stable_sort(resolved.begin(), resolved.end(),
                   [](const ResolvedFault& a, const ResolvedFault& b) { return a.time < b.time; });
  return resolved;
}

void FaultModel::arm() {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    calendar().schedule(faults_[i].time, this, i);
  }
}

void FaultModel::on_calendar_event(double /*now*/, std::uint64_t tag) {
  SMPI_ENSURE(tag < faults_.size(), "fault event tag out of range");
  const ResolvedFault& fault = faults_[tag];
  switch (fault.kind) {
    case FaultEvent::Kind::kHostCrash:
      if (host_hook_) host_hook_(fault.target, /*up=*/false);
      break;
    case FaultEvent::Kind::kHostRecover:
      if (host_hook_) host_hook_(fault.target, /*up=*/true);
      break;
    case FaultEvent::Kind::kLinkFail:
      if (link_hook_) link_hook_(fault.target, /*up=*/false, 1);
      break;
    case FaultEvent::Kind::kLinkRecover:
      if (link_hook_) link_hook_(fault.target, /*up=*/true, 1);
      break;
    case FaultEvent::Kind::kLinkDegrade:
      if (link_hook_) link_hook_(fault.target, /*up=*/true, fault.factor);
      break;
  }
}

}  // namespace smpi::sim
