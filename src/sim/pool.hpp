// Engine-owned free-list pools for the per-message hot path.
//
// Steady-state collectives create and destroy the same few object shapes
// millions of times per run: Activities (send/recv tokens, flows, sleeps),
// envelopes, and eager-payload snapshots. BlockPool recycles the raw memory
// of small objects (including the shared_ptr control block, via
// allocate_shared + PoolAllocator) and BufferPool recycles the snapshot
// byte arrays in power-of-two size classes. Objects are constructed fresh
// on every acquire ("reset-on-acquire": the pool hands out raw storage, the
// placement constructor re-establishes every invariant), so recycling can
// never leak state between messages — or, in the campaign runner, between
// fork-isolated scenarios, since pools live on the per-scenario Engine.
//
// Lifetime rule: the pools are the FIRST members of their owner, so they
// are destroyed LAST — every pooled object must die before the pool that
// carries its storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "obs/profile.hpp"

namespace smpi::sim {

struct PoolStats {
  std::uint64_t hits = 0;    // acquisitions served from a free list
  std::uint64_t misses = 0;  // acquisitions that had to touch the heap
};

// Free lists of fixed-granularity raw blocks for small objects. Sizes are
// rounded up to 64-byte granules; anything beyond kMaxBlockBytes bypasses
// the pool (counted as a miss — nothing on the hot path is that large).
class BlockPool {
 public:
  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  ~BlockPool() {
    for (auto& list : free_) {
      for (void* block : list) ::operator delete(block);
    }
  }

  void* allocate(std::size_t size) {
    obs::ProfScope prof(obs::ProfKey::kPoolOp);
    const std::size_t cls = class_of(size);
    if (cls < free_.size() && !free_[cls].empty()) {
      void* block = free_[cls].back();
      free_[cls].pop_back();
      ++stats_.hits;
      return block;
    }
    ++stats_.misses;
    if (cls >= kClassCount) return ::operator new(size);
    return ::operator new((cls + 1) * kGranule);
  }

  void deallocate(void* block, std::size_t size) noexcept {
    obs::ProfScope prof(obs::ProfKey::kPoolOp);
    const std::size_t cls = class_of(size);
    if (cls >= kClassCount) {
      ::operator delete(block);
      return;
    }
    if (free_.size() <= cls) free_.resize(cls + 1);
    free_[cls].push_back(block);
  }

  const PoolStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxBlockBytes = 4096;
  static constexpr std::size_t kClassCount = kMaxBlockBytes / kGranule;

  static std::size_t class_of(std::size_t size) { return size == 0 ? 0 : (size - 1) / kGranule; }

  std::vector<std::vector<void*>> free_;
  PoolStats stats_;
};

// Minimal allocator over a BlockPool, for std::allocate_shared: the object
// and its control block live in one recycled blob. The pool pointer is
// captured at construction and must outlive every allocation (see the
// lifetime rule above).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  explicit PoolAllocator(BlockPool* pool) noexcept : pool(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept : pool(other.pool) {}

  T* allocate(std::size_t n) { return static_cast<T*>(pool->allocate(n * sizeof(T))); }
  void deallocate(T* p, std::size_t n) noexcept { pool->deallocate(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const noexcept {
    return pool == other.pool;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const noexcept {
    return pool != other.pool;
  }

  BlockPool* pool;
};

// Recycled byte buffers for eager-payload snapshots, bucketed by
// power-of-two capacity. The RAII Buffer handle returns its storage on
// destruction; a handle whose pool has been disabled (or that was acquired
// through the static unpooled fallback) owns plain heap memory instead.
class BufferPool {
 public:
  class Buffer {
   public:
    Buffer() noexcept = default;
    Buffer(Buffer&& other) noexcept
        : data_(other.data_), capacity_(other.capacity_), pool_(other.pool_) {
      other.data_ = nullptr;
      other.pool_ = nullptr;
    }
    Buffer& operator=(Buffer&& other) noexcept {
      if (this != &other) {
        release();
        data_ = other.data_;
        capacity_ = other.capacity_;
        pool_ = other.pool_;
        other.data_ = nullptr;
        other.pool_ = nullptr;
      }
      return *this;
    }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { release(); }

    unsigned char* get() const noexcept { return data_; }
    explicit operator bool() const noexcept { return data_ != nullptr; }

    void release() noexcept {
      if (data_ == nullptr) return;
      if (pool_ != nullptr) {
        pool_->put_back(data_, capacity_);
      } else {
        delete[] data_;
      }
      data_ = nullptr;
      pool_ = nullptr;
    }

   private:
    friend class BufferPool;
    Buffer(unsigned char* data, std::size_t capacity, BufferPool* pool) noexcept
        : data_(data), capacity_(capacity), pool_(pool) {}

    unsigned char* data_ = nullptr;
    std::size_t capacity_ = 0;
    BufferPool* pool_ = nullptr;
  };

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool() {
    for (auto& list : classes_) {
      for (unsigned char* buffer : list) delete[] buffer;
    }
  }

  Buffer acquire(std::size_t bytes) {
    obs::ProfScope prof(obs::ProfKey::kPoolOp);
    const std::size_t cls = class_of(bytes);
    const std::size_t capacity = std::size_t{1} << cls;
    if (cls < classes_.size() && !classes_[cls].empty()) {
      unsigned char* data = classes_[cls].back();
      classes_[cls].pop_back();
      ++stats_.hits;
      return Buffer(data, capacity, this);
    }
    ++stats_.misses;
    return Buffer(new unsigned char[capacity], capacity, this);
  }

  // Plain-heap buffer for when no pool is available (pooling disabled or no
  // engine in scope).
  static Buffer acquire_unpooled(std::size_t bytes) {
    const std::size_t capacity = bytes == 0 ? 1 : bytes;
    return Buffer(new unsigned char[capacity], capacity, nullptr);
  }

  const PoolStats& stats() const { return stats_; }

 private:
  static std::size_t class_of(std::size_t bytes) {
    std::size_t cls = 0;
    while ((std::size_t{1} << cls) < bytes) ++cls;
    return cls;
  }

  void put_back(unsigned char* data, std::size_t capacity) noexcept {
    const std::size_t cls = class_of(capacity);
    if (classes_.size() <= cls) classes_.resize(cls + 1);
    classes_[cls].push_back(data);
  }

  std::vector<std::vector<unsigned char*>> classes_;
  PoolStats stats_;
};

}  // namespace smpi::sim
