// Small-object utilities for the per-message hot path.
//
// The engine fires millions of timer callbacks and activity-completion hooks
// per simulated collective; std::function heap-allocates any capture larger
// than two pointers and std::vector allocates for its very first element.
// SmallFunction and InlineVec keep both on the owning object's own storage
// for the capture/fan-out sizes the hot path actually produces, so a pooled
// Activity or Timer costs zero heap traffic across its whole lifecycle.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace smpi::sim {

// Move-only callable with inline storage for captures up to `N` bytes;
// larger callables degrade to a single heap allocation (off the hot path —
// every hot-path lambda in the engine and MPI layers fits inline).
template <typename Sig, std::size_t N = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t N>
class SmallFunction<R(Args...), N> {
 public:
  SmallFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= N && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage()) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *static_cast<Fn**>(storage()) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage(), storage());
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        other.ops_->relocate(other.storage(), storage());
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) { return ops_->invoke(storage(), std::forward<Args>(args)...); }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to);  // move-construct into `to`, destroy `from`
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(static_cast<Fn*>(s)))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) {
        Fn* f = std::launder(static_cast<Fn*>(from));
        ::new (to) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) { std::launder(static_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* s, Args&&... args) -> R {
        return (**static_cast<Fn**>(s))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) { *static_cast<Fn**>(to) = *static_cast<Fn**>(from); },
      [](void* s) { delete *static_cast<Fn**>(s); },
  };

  void* storage() noexcept { return &storage_; }

  alignas(std::max_align_t) unsigned char storage_[N < sizeof(void*) ? sizeof(void*) : N];
  const Ops* ops_ = nullptr;
};

// Vector with `N` elements of inline capacity; spills to the heap beyond
// that. Activities carry their waiter/callback lists in one of these: the
// common fan-out is 0 or 1, so a pooled Activity's construct/destroy cycle
// never touches the allocator.
template <typename T, std::size_t N>
class InlineVec {
 public:
  InlineVec() noexcept = default;
  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;

  ~InlineVec() {
    clear();
    if (data_ != inline_data()) ::operator delete(data_);
  }

  void push_back(T value) {
    if (size_ == capacity_) grow();
    ::new (data_ + size_) T(std::move(value));
    ++size_;
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }

  // Steal the contents, leaving `other` empty — the completion-dispatch
  // idiom (callbacks may re-register on the same activity while the old
  // list is being fired).
  InlineVec(InlineVec&& other) noexcept {
    if (other.data_ == other.inline_data()) {
      for (std::size_t i = 0; i < other.size_; ++i) {
        ::new (data_ + i) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.inline_data();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

 private:
  void grow() {
    const std::size_t new_capacity = capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (data_ != inline_data()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = new_capacity;
  }

  T* inline_data() noexcept { return std::launder(reinterpret_cast<T*>(&inline_storage_)); }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace smpi::sim
