#include "sim/calendar.hpp"

#include "sim/model.hpp"
#include "util/check.hpp"

namespace smpi::sim {

EventCalendar& Model::calendar() const {
  SMPI_REQUIRE(calendar_ != nullptr, "model not registered with an engine (add_model)");
  return *calendar_;
}

EventCalendar::Handle EventCalendar::schedule(double date, Model* owner, std::uint64_t tag) {
  SMPI_REQUIRE(owner != nullptr, "calendar entry without an owner");
  SMPI_REQUIRE(date >= 0 && date < kNever, "calendar entry needs a finite date");
  const Handle handle = next_handle_++;
  heap_.push(Entry{date, handle, owner, tag});
  pending_.insert(handle);
  return handle;
}

void EventCalendar::cancel(Handle handle) {
  // Tombstone only handles still in the heap: cancelling an entry that
  // already fired (or was never scheduled) must stay a true no-op.
  if (handle == kNoEvent || pending_.find(handle) == pending_.end()) return;
  cancelled_.insert(handle);
}

void EventCalendar::prune() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().handle);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    pending_.erase(heap_.top().handle);
    heap_.pop();
  }
}

double EventCalendar::next_date() {
  prune();
  return heap_.empty() ? kNever : heap_.top().date;
}

bool EventCalendar::pop_due(double now, Fired* out) {
  prune();
  if (heap_.empty() || heap_.top().date > now) return false;
  out->owner = heap_.top().owner;
  out->tag = heap_.top().tag;
  pending_.erase(heap_.top().handle);
  heap_.pop();
  return true;
}

}  // namespace smpi::sim
