#include "sim/calendar.hpp"

#include "sim/model.hpp"
#include "util/check.hpp"

namespace smpi::sim {

EventCalendar& Model::calendar() const {
  SMPI_REQUIRE(calendar_ != nullptr, "model not registered with an engine (add_model)");
  return *calendar_;
}

std::size_t EventCalendar::find_slot(Handle handle) const {
  // kNoEvent would otherwise compare equal to a *free* node's sentinel.
  if (handle == kNoEvent) return kNpos;
  const std::size_t node = static_cast<std::size_t>(handle >> kSeqBits);
  if (node >= node_handle_.size() || node_handle_[node] != handle) return kNpos;
  return pos_[node];
}

void EventCalendar::place(std::size_t i, const Entry& entry) {
  heap_[i] = entry;
  pos_[entry.node] = i;
}

void EventCalendar::sift_up(std::size_t i) {
  const Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(entry, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, entry);
}

void EventCalendar::sift_down(std::size_t i) {
  const Entry entry = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], entry)) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, entry);
}

void EventCalendar::remove_at(std::size_t i) {
  const std::uint32_t node = heap_[i].node;
  node_handle_[node] = kNoEvent;
  free_nodes_.push_back(node);
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    const Entry moved = heap_[last];
    heap_.pop_back();
    place(i, moved);
    // The moved entry may need to travel either way.
    sift_up(i);
    sift_down(pos_[moved.node]);
  } else {
    heap_.pop_back();
  }
}

EventCalendar::Handle EventCalendar::schedule(double date, Model* owner, std::uint64_t tag) {
  SMPI_REQUIRE(owner != nullptr, "calendar entry without an owner");
  SMPI_REQUIRE(date >= 0 && date < kNever, "calendar entry needs a finite date");
  const std::uint64_t seq = (*sequence_)++;
  SMPI_REQUIRE(seq <= kSeqMask, "calendar sequence overflow");
  std::uint32_t node;
  if (!free_nodes_.empty()) {
    node = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    node = static_cast<std::uint32_t>(pos_.size());
    pos_.push_back(0);
    node_handle_.push_back(kNoEvent);
    node_data_.push_back(NodeData{});
  }
  const Handle handle = (static_cast<Handle>(node) << kSeqBits) | seq;
  node_handle_[node] = handle;
  node_data_[node] = NodeData{owner, tag};
  heap_.push_back(Entry{date, seq, node});
  sift_up(heap_.size() - 1);  // its final place() records the slot
  return handle;
}

bool EventCalendar::update(Handle handle, double date) {
  SMPI_REQUIRE(date >= 0 && date < kNever, "calendar entry needs a finite date");
  const std::size_t i = find_slot(handle);
  if (i == kNpos) return false;
  const double old_date = heap_[i].date;
  if (date == old_date) return true;
  heap_[i].date = date;
  if (date < old_date) {
    sift_up(i);
  } else {
    sift_down(i);
  }
  return true;
}

void EventCalendar::cancel(Handle handle) {
  // Cancelling an entry that already fired (or was never scheduled) must
  // stay a true no-op.
  if (handle == kNoEvent) return;
  const std::size_t i = find_slot(handle);
  if (i == kNpos) return;
  remove_at(i);
}

double EventCalendar::next_date() const {
  return heap_.empty() ? kNever : heap_.front().date;
}

bool EventCalendar::peek(double* date, std::uint64_t* order) const {
  if (heap_.empty()) return false;
  *date = heap_.front().date;
  *order = heap_.front().seq;
  return true;
}

bool EventCalendar::pop_due(double now, Fired* out) {
  if (heap_.empty() || heap_.front().date > now) return false;
  const NodeData& data = node_data_[heap_.front().node];
  out->owner = data.owner;
  out->tag = data.tag;
  remove_at(0);
  return true;
}

}  // namespace smpi::sim
