#include "sim/calendar.hpp"

#include "sim/model.hpp"
#include "util/check.hpp"

namespace smpi::sim {

EventCalendar& Model::calendar() const {
  SMPI_REQUIRE(calendar_ != nullptr, "model not registered with an engine (add_model)");
  return *calendar_;
}

void EventCalendar::place(std::size_t i, const Entry& entry) {
  heap_[i] = entry;
  slot_[entry.handle] = i;
}

void EventCalendar::sift_up(std::size_t i) {
  const Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(entry, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, entry);
}

void EventCalendar::sift_down(std::size_t i) {
  const Entry entry = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], entry)) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, entry);
}

void EventCalendar::remove_at(std::size_t i) {
  slot_.erase(heap_[i].handle);
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    const Entry moved = heap_[last];
    heap_.pop_back();
    place(i, moved);
    // The moved entry may need to travel either way.
    sift_up(i);
    sift_down(slot_[moved.handle]);
  } else {
    heap_.pop_back();
  }
}

EventCalendar::Handle EventCalendar::schedule(double date, Model* owner, std::uint64_t tag) {
  SMPI_REQUIRE(owner != nullptr, "calendar entry without an owner");
  SMPI_REQUIRE(date >= 0 && date < kNever, "calendar entry needs a finite date");
  const Handle handle = (*sequence_)++;
  heap_.push_back(Entry{date, handle, owner, tag});
  sift_up(heap_.size() - 1);  // its final place() records the slot
  return handle;
}

bool EventCalendar::update(Handle handle, double date) {
  SMPI_REQUIRE(date >= 0 && date < kNever, "calendar entry needs a finite date");
  auto it = slot_.find(handle);
  if (it == slot_.end()) return false;
  const std::size_t i = it->second;
  const double old_date = heap_[i].date;
  if (date == old_date) return true;
  heap_[i].date = date;
  if (date < old_date) {
    sift_up(i);
  } else {
    sift_down(i);
  }
  return true;
}

void EventCalendar::cancel(Handle handle) {
  // Cancelling an entry that already fired (or was never scheduled) must
  // stay a true no-op.
  auto it = slot_.find(handle);
  if (handle == kNoEvent || it == slot_.end()) return;
  remove_at(it->second);
}

double EventCalendar::next_date() const {
  return heap_.empty() ? kNever : heap_.front().date;
}

bool EventCalendar::peek(double* date, Handle* order) const {
  if (heap_.empty()) return false;
  *date = heap_.front().date;
  *order = heap_.front().handle;
  return true;
}

bool EventCalendar::pop_due(double now, Fired* out) {
  if (heap_.empty() || heap_.front().date > now) return false;
  out->owner = heap_.front().owner;
  out->tag = heap_.front().tag;
  remove_at(0);
  return true;
}

}  // namespace smpi::sim
