// The sequential simulation kernel (the paper's SIMIX/SURF driver, §5.1).
//
// One Engine per simulation. It owns the virtual clock, the actors, a timer
// queue, and the shared event calendar models push into. The main loop
// alternates between
//   (1) running every runnable actor (in pid order — fully deterministic)
//       until each blocks on an activity, and
//   (2) advancing virtual time to the earliest calendar/timer entry and
//       dispatching whatever fires there; calendar entries and timers due
//       at the same date drain as one merged stream in strict global
//       (date, creation) order — both heaps draw creation numbers from one
//       shared sequence.
// Models are never polled: a model only runs when one of its own calendar
// entries comes due. Exactly one actor executes at any instant, which is
// what makes running hundreds of MPI processes inside one OS process safe.
#pragma once


#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/activity.hpp"
#include "sim/actor.hpp"
#include "sim/calendar.hpp"
#include "sim/context.hpp"
#include "sim/model.hpp"
#include "sim/pool.hpp"
#include "sim/small.hpp"

namespace smpi::sim {

struct EngineConfig {
  std::string context_backend;      // "", "ucontext", "thread"
  std::size_t stack_bytes = 512 * 1024;
  bool trace_events = false;        // record (time, label) pairs for determinism tests
  // Recycle Activities / envelopes / snapshot buffers through engine-owned
  // free lists. Off = the pre-pooling allocation behavior, kept as the
  // reference arm for equivalence tests and the p2p microbench.
  bool pool_objects = true;
  // Abort the simulation (TimeLimitError) once the virtual clock would pass
  // this date. 0 = unlimited. Guards runaway simulations whose poll/timer
  // escalation keeps virtual time advancing forever.
  double max_sim_time = 0;
};

class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when EngineConfig::max_sim_time is exceeded.
class TimeLimitError : public std::runtime_error {
 public:
  explicit TimeLimitError(const std::string& what) : std::runtime_error(what) {}
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- setup -------------------------------------------------------------
  Actor* spawn(std::string name, int node, std::function<void()> body);
  // Binds the model to this engine's event calendar and keeps it alive.
  void add_model(std::shared_ptr<Model> model);

  // --- main loop ---------------------------------------------------------
  // Runs until every actor is dead. Throws DeadlockError if actors remain
  // but nothing can ever happen again.
  void run();

  // Freeze the simulation at the current date: run() stops scheduling as
  // soon as the requesting actor yields control, and no further calendar
  // events or timers fire. Used on abort — once a rank's frame has unwound,
  // in-flight completions into it must never be dispatched.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  // Destroy all actors now, force-unwinding live ones (ForcedExit through
  // their contexts). Higher layers call this before freeing per-actor state
  // that the unwinding destructors write back into, while the engine (and
  // its object pools) stays alive for the cleanup itself. Idempotent;
  // ~Engine calls it as a fallback.
  void shutdown_actors();

  // --- services available from actor context ------------------------------
  double now() const { return now_; }
  Actor* current_actor() const { return current_; }

  // Block the current actor until `activity` completes.
  void wait_on(Activity& activity);
  // Block the current actor for `duration` simulated seconds.
  void sleep_for(double duration);
  // Give other runnable actors a chance to run at the current date.
  void yield();

  // --- services for models / higher layers --------------------------------
  using TimerFn = SmallFunction<void(), 48>;
  void add_timer(double date, TimerFn callback);
  void wake(Actor* actor);
  EventCalendar& calendar() { return calendar_; }

  // Hot-path object recycling (see sim/pool.hpp). The pools are engine
  // members so every fork-isolated campaign scenario gets fresh ones; they
  // are declared first so they outlive every pooled object.
  bool pooling() const { return config_.pool_objects; }
  BlockPool& object_pool() { return object_pool_; }
  BufferPool& buffer_pool() { return buffer_pool_; }
  const BlockPool& object_pool() const { return object_pool_; }
  const BufferPool& buffer_pool() const { return buffer_pool_; }
  // Queue `model` for a single on_settle() call before time next advances
  // (idempotent until the settle runs). Use Model::request_settle().
  void request_settle(Model* model);

  // Higher layers (the MPI world) can attach a wait-for reporter: its output
  // is appended to the DeadlockError message so the diagnostic can name the
  // blocked MPI operation per rank, not just the actor names.
  void set_deadlock_reporter(std::function<std::string()> reporter) {
    deadlock_reporter_ = std::move(reporter);
  }

  // The engine currently executing (set for the duration of run()).
  static Engine* current();

  // O(1): maintained incrementally — the main loop consults it after every
  // scheduling round, so a scan over all actors would be quadratic at 1024
  // ranks.
  std::size_t live_actor_count() const { return live_actors_; }
  const std::vector<std::unique_ptr<Actor>>& actors() const { return actors_; }

  // Determinism probe: FNV-1a hash over the recorded (time, label) trace.
  void trace(const std::string& label);
  std::uint64_t trace_hash() const;

  // Diagnostics: total timers ever created (the poll-subscription path in
  // the MPI layer asserts it stays sub-linear in simulated polls).
  std::uint64_t timers_created() const { return timers_created_; }

 private:
  void run_actor(Actor* actor);
  // Advance the clock to the next event; returns false when nothing is left.
  bool advance_time();
  // Run the pending on_settle() hooks (at the current date).
  void drain_settles();
  void suspend_current();

  struct Timer {
    double date;
    std::uint64_t seq;  // tie-breaker: firing order == creation order
    TimerFn callback;
    bool operator>(const Timer& other) const {
      return date != other.date ? date > other.date : seq > other.seq;
    }
  };

  EngineConfig config_;
  // Destroyed last (declared first): pooled objects live in actors' stack
  // frames and in the models below, all of which die before these.
  BlockPool object_pool_;
  BufferPool buffer_pool_;
  std::unique_ptr<ContextFactory> context_factory_;
  double now_ = 0;
  std::vector<std::unique_ptr<Actor>> actors_;
  // FIFO of ready actors as a vector + head cursor instead of a deque: the
  // scheduler drains it fully every round, at which point it resets to
  // offset 0 with its capacity kept — a deque's chunk recycling would
  // allocate every ~64 pushes forever, breaking the zero-allocation
  // steady state the pools exist for.
  std::vector<Actor*> runnable_;
  std::size_t runnable_head_ = 0;
  bool runnable_empty() const { return runnable_head_ == runnable_.size(); }
  void runnable_push(Actor* actor) { runnable_.push_back(actor); }
  Actor* runnable_pop() {
    Actor* actor = runnable_[runnable_head_++];
    if (runnable_head_ == runnable_.size()) {
      runnable_.clear();
      runnable_head_ = 0;
    }
    return actor;
  }
  std::size_t live_actors_ = 0;
  Actor* current_ = nullptr;
  std::vector<std::shared_ptr<Model>> models_;
  // One sequence for calendar handles AND timer seqs: the merged phase-2
  // drain compares (date, creation) across both heaps. Declared before
  // calendar_, which captures a pointer to it.
  std::uint64_t event_seq_ = 1;
  EventCalendar calendar_{&event_seq_};
  std::vector<Model*> settle_queue_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::uint64_t timers_created_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  std::function<std::string()> deadlock_reporter_;
  std::uint64_t trace_hash_state_ = 1469598103934665603ULL;  // FNV offset basis
};

}  // namespace smpi::sim
