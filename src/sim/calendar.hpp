// Shared event calendar — the engine's "action heap".
//
// Instead of the engine polling every registered model for its next event on
// every step (O(models x activities) per step), models push (date, tag)
// entries into this binary heap whenever an allocation changes, and the
// engine pops only the earliest due entry. Entries are cancelled lazily: a
// cancelled handle stays in the heap and is skipped when it surfaces, which
// keeps cancel() O(1) amortized.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

namespace smpi::sim {

class Model;

class EventCalendar {
 public:
  using Handle = std::uint64_t;
  static constexpr Handle kNoEvent = 0;

  struct Fired {
    Model* owner = nullptr;
    std::uint64_t tag = 0;
  };

  // Registers an event at `date`. `tag` is an opaque payload the owner uses
  // to find the affected activity (flow id, execution id, ...).
  Handle schedule(double date, Model* owner, std::uint64_t tag);
  // Invalidates a previously scheduled entry. Safe on kNoEvent and on
  // handles that already fired (no-op).
  void cancel(Handle handle);

  // Date of the earliest live entry, or sim::kNever when none.
  double next_date();
  // Pops the earliest live entry with date <= now into *out. Returns false
  // when no entry is due.
  bool pop_due(double now, Fired* out);

  std::size_t live_entry_count() const { return pending_.size() - cancelled_.size(); }

 private:
  struct Entry {
    double date;
    Handle handle;  // creation order; also the deterministic tie-breaker
    Model* owner;
    std::uint64_t tag;
    bool operator>(const Entry& other) const {
      return date != other.date ? date > other.date : handle > other.handle;
    }
  };

  // Drop cancelled entries sitting on top of the heap.
  void prune();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<Handle> pending_;    // handles still in the heap
  std::unordered_set<Handle> cancelled_;  // tombstones; always a subset of pending_
  Handle next_handle_ = 1;
};

}  // namespace smpi::sim
