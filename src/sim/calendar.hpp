// Shared event calendar — the engine's "action heap".
//
// Instead of the engine polling every registered model for its next event on
// every step (O(models x activities) per step), models push (date, tag)
// entries into this heap whenever an allocation changes, and the engine pops
// only the earliest due entry.
//
// The heap is an *indexed* binary heap: a side table maps each live handle
// to its heap slot, so a rate change moves an action's completion entry in
// place (update(), one O(log n) sift) instead of tombstoning the old entry
// and pushing a fresh one. Under heavy reschedule churn — a 1024-flow
// collective re-solving on every completion — the tombstone scheme let
// dead entries pile up and every pop paid for skipping them; the indexed
// heap keeps exactly one entry per action, forever.
//
// Entries order by (date, handle); handles are creation-ordered, so ties
// fire deterministically. The engine shares its sequence counter with the
// calendar (see Engine) so calendar entries and plain timers interleave in
// strict global (date, creation) order.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace smpi::sim {

class Model;

class EventCalendar {
 public:
  using Handle = std::uint64_t;
  static constexpr Handle kNoEvent = 0;

  struct Fired {
    Model* owner = nullptr;
    std::uint64_t tag = 0;
  };

  EventCalendar() = default;
  // Draw handles from an external counter (the engine's, shared with its
  // timer queue) so creation order is comparable across both heaps.
  explicit EventCalendar(std::uint64_t* sequence) : sequence_(sequence) {}
  // sequence_ may point at own_sequence_: copying/moving would alias the
  // source's counter (and dangle once it dies).
  EventCalendar(const EventCalendar&) = delete;
  EventCalendar& operator=(const EventCalendar&) = delete;

  // Registers an event at `date`. `tag` is an opaque payload the owner uses
  // to find the affected activity (flow id, execution id, ...).
  Handle schedule(double date, Model* owner, std::uint64_t tag);
  // Moves a live entry to a new date in place (the action-heap decrease/
  // increase-key). Returns false when the handle is not live (already fired
  // or cancelled) — the caller schedules a fresh entry instead.
  bool update(Handle handle, double date);
  // Removes a previously scheduled entry from the heap. Safe on kNoEvent and
  // on handles that already fired (no-op).
  void cancel(Handle handle);

  // Date of the earliest live entry, or sim::kNever when none.
  double next_date() const;
  // Earliest entry's (date, creation order) without popping. Returns false
  // when the calendar is empty.
  bool peek(double* date, Handle* order) const;
  // Pops the earliest entry with date <= now into *out. Returns false when
  // no entry is due.
  bool pop_due(double now, Fired* out);

  std::size_t live_entry_count() const { return heap_.size(); }

 private:
  struct Entry {
    double date;
    Handle handle;  // creation order; also the deterministic tie-breaker
    Model* owner;
    std::uint64_t tag;
  };

  static bool before(const Entry& a, const Entry& b) {
    return a.date != b.date ? a.date < b.date : a.handle < b.handle;
  }
  // Writes `entry` into slot i and records its position.
  void place(std::size_t i, const Entry& entry);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  // Removes the entry at slot i, restoring the heap property.
  void remove_at(std::size_t i);

  std::vector<Entry> heap_;
  std::unordered_map<Handle, std::size_t> slot_;  // live handle -> heap index
  std::uint64_t own_sequence_ = 1;                // 0 is kNoEvent
  std::uint64_t* sequence_ = &own_sequence_;
};

}  // namespace smpi::sim
