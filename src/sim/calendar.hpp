// Shared event calendar — the engine's "action heap".
//
// Instead of the engine polling every registered model for its next event on
// every step (O(models x activities) per step), models push (date, tag)
// entries into this heap whenever an allocation changes, and the engine pops
// only the earliest due entry.
//
// The heap is an *indexed* binary heap: every live entry owns a small
// recycled node id, and a side vector maps node id -> heap slot, so a rate
// change moves an action's completion entry in place (update(), one
// O(log n) sift) instead of tombstoning the old entry and pushing a fresh
// one. Under heavy reschedule churn — a 1024-flow collective re-solving on
// every completion — the tombstone scheme let dead entries pile up and every
// pop paid for skipping them; the indexed heap keeps exactly one entry per
// action, forever. Node ids keep the position table a plain vector write:
// an earlier revision tracked positions in a handle-keyed hash map, and the
// hashing inside every sift step dominated large-collective profiles.
//
// Entries order by (date, seq); seqs are creation-ordered, so ties fire
// deterministically. The engine shares its sequence counter with the
// calendar (see Engine) so calendar entries and plain timers interleave in
// strict global (date, creation) order. A Handle packs the node id above
// the creation seq — callers treat it as opaque; liveness is checked by
// comparing the full packed value against the node's current occupant.
#pragma once

#include <cstdint>
#include <vector>

namespace smpi::sim {

class Model;

class EventCalendar {
 public:
  using Handle = std::uint64_t;
  static constexpr Handle kNoEvent = 0;

  struct Fired {
    Model* owner = nullptr;
    std::uint64_t tag = 0;
  };

  EventCalendar() = default;
  // Draw handles from an external counter (the engine's, shared with its
  // timer queue) so creation order is comparable across both heaps.
  explicit EventCalendar(std::uint64_t* sequence) : sequence_(sequence) {}
  // sequence_ may point at own_sequence_: copying/moving would alias the
  // source's counter (and dangle once it dies).
  EventCalendar(const EventCalendar&) = delete;
  EventCalendar& operator=(const EventCalendar&) = delete;

  // Registers an event at `date`. `tag` is an opaque payload the owner uses
  // to find the affected activity (flow id, execution id, ...).
  Handle schedule(double date, Model* owner, std::uint64_t tag);
  // Moves a live entry to a new date in place (the action-heap decrease/
  // increase-key). Returns false when the handle is not live (already fired
  // or cancelled) — the caller schedules a fresh entry instead.
  bool update(Handle handle, double date);
  // Removes a previously scheduled entry from the heap. Safe on kNoEvent and
  // on handles that already fired (no-op).
  void cancel(Handle handle);

  // Date of the earliest live entry, or sim::kNever when none.
  double next_date() const;
  // Earliest entry's (date, creation order) without popping. Returns false
  // when the calendar is empty.
  bool peek(double* date, std::uint64_t* order) const;
  // Pops the earliest entry with date <= now into *out. Returns false when
  // no entry is due.
  bool pop_due(double now, Fired* out);

  std::size_t live_entry_count() const { return heap_.size(); }

 private:
  // Handle layout: [node id : 24][creation seq : 40]. 2^40 events and 2^24
  // simultaneous entries are both far beyond any simulation this engine can
  // hold in memory; schedule() asserts the seq bound anyway.
  static constexpr unsigned kSeqBits = 40;
  static constexpr Handle kSeqMask = (Handle{1} << kSeqBits) - 1;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  // Heap entries carry only what the ordering needs; the (owner, tag)
  // payload lives in node-indexed side storage so each sift step moves 24
  // bytes instead of 40.
  struct Entry {
    double date;
    std::uint64_t seq;   // creation order; the deterministic tie-breaker
    std::uint32_t node;  // index into pos_ / node_handle_ / node_data_
  };
  struct NodeData {
    Model* owner;
    std::uint64_t tag;
  };

  static bool before(const Entry& a, const Entry& b) {
    return a.date != b.date ? a.date < b.date : a.seq < b.seq;
  }
  // Heap slot of a live handle, or kNpos when it already fired/cancelled.
  std::size_t find_slot(Handle handle) const;
  // Writes `entry` into slot i and records its position.
  void place(std::size_t i, const Entry& entry);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  // Removes the entry at slot i, restoring the heap property.
  void remove_at(std::size_t i);

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;      // node id -> heap slot
  std::vector<Handle> node_handle_;   // node id -> occupying handle (kNoEvent = free)
  std::vector<NodeData> node_data_;   // node id -> event payload
  std::vector<std::uint32_t> free_nodes_;
  std::uint64_t own_sequence_ = 1;  // 0 is kNoEvent
  std::uint64_t* sequence_ = &own_sequence_;
};

}  // namespace smpi::sim
