// Cooperative execution contexts for simulated processes.
//
// Every simulated MPI process runs its real application code on its own
// context; the simulation kernel resumes exactly one context at a time and
// the context gives control back whenever the process blocks on a simulated
// activity. This is the mechanism that makes the simulation *on-line* (the
// code actually executes) yet strictly sequential (§5.1 of the paper).
//
// Three interchangeable backends:
//  * "raw"      — hand-rolled callee-saved-register stack switch (x86-64
//    and aarch64 Linux), the default there: no sigprocmask syscall per
//    switch, ~20x faster than swapcontext. On aarch64 the frame carries
//    x19-x28, fp/lr, and d8-d15 per AAPCS64. Falls back to ucontext
//    elsewhere.
//  * "ucontext" — swapcontext-based fibers, the portable POSIX default;
//  * "thread"   — one std::thread per context with strict semaphore handoff,
//    a portable fallback (select with SMPI_CONTEXT_BACKEND=thread).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace smpi::sim {

// Thrown inside a context to force stack unwinding when an unfinished actor
// is destroyed (engine teardown, kill). Must never be swallowed by user code.
struct ForcedExit {};

class Context {
 public:
  virtual ~Context() = default;

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // Kernel side: run the context until it suspends or terminates.
  virtual void resume() = 0;
  // Actor side: yield control back to the kernel.
  virtual void suspend() = 0;

  bool done() const { return done_; }
  // Ask the context to unwind the next time it runs; resume() must then be
  // called once to let it do so.
  void request_kill() { kill_requested_ = true; }
  bool kill_requested() const { return kill_requested_; }

 protected:
  Context() = default;
  bool done_ = false;
  bool kill_requested_ = false;
};

class ContextFactory {
 public:
  virtual ~ContextFactory() = default;
  virtual std::unique_ptr<Context> create(std::function<void()> body) = 0;
  virtual std::string name() const = 0;

  // backend: "ucontext", "thread", or "" to honor SMPI_CONTEXT_BACKEND (with
  // ucontext as the final default).
  static std::unique_ptr<ContextFactory> make(const std::string& backend, std::size_t stack_bytes);
};

}  // namespace smpi::sim
