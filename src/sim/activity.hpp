// Activities are the things simulated processes wait on: a computation, a
// network flow, a sleep, or a synthetic condition completed by higher layers
// (the MPI matching engine backs every MPI_Request with one).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace smpi::sim {

class Actor;
class Engine;

class Activity {
 public:
  enum class State { kRunning, kDone, kFailed, kCanceled };

  explicit Activity(std::string label = "");
  virtual ~Activity() = default;

  State state() const { return state_; }
  bool completed() const { return state_ != State::kRunning; }
  const std::string& label() const { return label_; }

  // Block the calling actor until the activity completes. Returns the final
  // state. Must be called from actor context.
  State wait();
  // Non-blocking check.
  bool test() const { return completed(); }

  // Completion hook; fires exactly once, immediately if already completed.
  void on_completion(std::function<void(Activity&)> callback);

  // Mark complete and wake all waiting actors (at the engine's current time).
  void finish(State state);
  // Cancel; resources held by model actions are released by the owner model.
  virtual void cancel() { finish(State::kCanceled); }

  // Virtual time at which the activity completed (meaningful once completed).
  double finish_time() const { return finish_time_; }

 private:
  friend class Engine;
  std::string label_;
  State state_ = State::kRunning;
  double finish_time_ = -1;
  std::vector<Actor*> waiters_;
  std::vector<std::function<void(Activity&)>> callbacks_;
};

using ActivityPtr = std::shared_ptr<Activity>;

}  // namespace smpi::sim
