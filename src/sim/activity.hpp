// Activities are the things simulated processes wait on: a computation, a
// network flow, a sleep, or a synthetic condition completed by higher layers
// (the MPI matching engine backs every MPI_Request with one).
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "sim/small.hpp"

namespace smpi::sim {

class Actor;
class Engine;

class Activity {
 public:
  enum class State { kRunning, kDone, kFailed, kCanceled };

  explicit Activity(std::string label = "");
  virtual ~Activity() = default;

  State state() const { return state_; }
  bool completed() const { return state_ != State::kRunning; }
  const std::string& label() const { return label_; }

  // Block the calling actor until the activity completes. Returns the final
  // state. Must be called from actor context.
  State wait();
  // Non-blocking check.
  bool test() const { return completed(); }

  // Completion hook; fires exactly once, immediately if already completed.
  // The callback type keeps hot-path captures (a shared_ptr or two plus a
  // few scalars) in inline storage — no heap traffic per registration.
  using CompletionFn = SmallFunction<void(Activity&), 48>;
  void on_completion(CompletionFn callback);

  // Mark complete and wake all waiting actors (at the engine's current time).
  void finish(State state);
  // Cancel; resources held by model actions are released by the owner model.
  virtual void cancel() { finish(State::kCanceled); }

  // Virtual time at which the activity completed (meaningful once completed).
  double finish_time() const { return finish_time_; }

 private:
  friend class Engine;
  std::string label_;
  State state_ = State::kRunning;
  double finish_time_ = -1;
  // Inline capacity 2: the common fan-out is one waiter and/or one callback
  // (a waitany-style helper may add a second), so a pooled Activity's whole
  // construct/wait/finish/destroy cycle allocates nothing.
  InlineVec<Actor*, 2> waiters_;
  InlineVec<CompletionFn, 2> callbacks_;
};

using ActivityPtr = std::shared_ptr<Activity>;

// Engine-pooled Activity factory: recycles the object + control-block
// storage from the current engine's BlockPool when one exists and pooling
// is enabled, else falls back to a plain make_shared. `label` must be a
// short literal (SSO) for the pooled path to stay allocation-free.
ActivityPtr new_activity(const char* label);

// Lazy remaining-work accounting for fluid activities (flows, executions).
//
// Instead of integrating every activity's progress on every engine step, the
// remaining amount is only materialized when this activity's own rate
// changes: remaining_at(t) = remaining - rate * (t - last_update). A solver
// re-solve therefore touches exactly the activities whose allocation
// changed; all others keep a valid (rate, last_update) pair untouched.
class FluidWork {
 public:
  void start(double total, double now) {
    remaining_ = total;
    rate_ = 0;
    last_update_ = now;
  }

  double remaining_at(double now) const {
    return std::max(0.0, remaining_ - rate_ * (now - last_update_));
  }

  // Folds the progress made at the old rate, then switches to `rate`.
  void set_rate(double rate, double now) {
    remaining_ = remaining_at(now);
    rate_ = rate;
    last_update_ = now;
  }

  // Date at which the work hits zero under the current rate; kNever-like
  // infinity when the rate is zero and work remains.
  double completion_date(double now) const {
    const double remaining = remaining_at(now);
    if (remaining <= 0) return now;
    return now + remaining / rate_;  // +inf when rate_ == 0
  }

  double rate() const { return rate_; }
  double last_update() const { return last_update_; }

 private:
  double remaining_ = 0;
  double rate_ = 0;
  double last_update_ = 0;
};

}  // namespace smpi::sim
