// Resource-model plug-in interfaces.
//
// The engine is event-driven: models push the dates of their next internal
// state changes into the engine's shared EventCalendar, and the engine calls
// on_calendar_event() when such a date is reached. Models reschedule entries
// whenever an allocation change moves a completion date — only the
// activities whose rates changed are touched. The flow-level network model
// (surf), the CPU model, and the packet-level ground-truth network (pnet)
// all implement Model.
//
// NetworkBackend/ComputeBackend are the service interfaces the MPI layer
// uses; having both the analytical and the packet-level simulators behind
// NetworkBackend is what lets the *same* application run against either —
// the paper's methodology of comparing SMPI to a real testbed.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/activity.hpp"
#include "sim/calendar.hpp"

namespace smpi::sim {

class Engine;

constexpr double kNever = std::numeric_limits<double>::infinity();

class Model {
 public:
  virtual ~Model() = default;
  // A calendar entry scheduled by this model fired: virtual time reached the
  // entry's date. `tag` is the payload passed to EventCalendar::schedule().
  virtual void on_calendar_event(double now, std::uint64_t tag) = 0;
  // Deferred-update hook: runs once before the engine next advances time,
  // if the model called request_settle() since the last settle.
  virtual void on_settle(double /*now*/) {}

 protected:
  // The engine's shared calendar; bound by Engine::add_model().
  EventCalendar& calendar() const;
  // Coalesces allocation updates: however many activities arrive or finish
  // at one virtual instant, the engine calls on_settle() exactly once before
  // computing the next event date — one re-solve per batch, not per change.
  void request_settle();

 private:
  friend class Engine;
  Engine* engine_ = nullptr;
  EventCalendar* calendar_ = nullptr;
  bool settle_pending_ = false;
};

struct FlowHints {
  // Rate cap already decided by higher layers (bytes/s); <=0 means none.
  double rate_bound = 0;
};

class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;
  // Start moving `bytes` from node src to node dst; the returned activity
  // completes when the last byte arrives.
  virtual ActivityPtr start_flow(int src_node, int dst_node, double bytes,
                                 const FlowHints& hints) = 0;
  virtual const char* backend_name() const = 0;
};

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;
  // Burn `flops` on `node`; completes when done under the CPU-sharing model.
  virtual ActivityPtr execute(int node, double flops) = 0;
  // Nominal speed of a node in flop/s (used to convert measured host seconds
  // into target flops, §3.1).
  virtual double node_speed(int node) const = 0;
};

}  // namespace smpi::sim
