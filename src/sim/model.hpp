// Resource-model plug-in interfaces.
//
// The engine is model-agnostic: it asks every registered model for the date
// of its next internal event and tells it to advance. The flow-level network
// model (surf), the CPU model, and the packet-level ground-truth network
// (pnet) all implement Model.
//
// NetworkBackend/ComputeBackend are the service interfaces the MPI layer
// uses; having both the analytical and the packet-level simulators behind
// NetworkBackend is what lets the *same* application run against either —
// the paper's methodology of comparing SMPI to a real testbed.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/activity.hpp"

namespace smpi::sim {

class Engine;

constexpr double kNever = std::numeric_limits<double>::infinity();

class Model {
 public:
  virtual ~Model() = default;
  // Date of the next internal state change, or kNever.
  virtual double next_event_time(double now) = 0;
  // Advance internal state to `now`, finishing activities that complete.
  virtual void advance_to(double now) = 0;
};

struct FlowHints {
  // Rate cap already decided by higher layers (bytes/s); <=0 means none.
  double rate_bound = 0;
};

class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;
  // Start moving `bytes` from node src to node dst; the returned activity
  // completes when the last byte arrives.
  virtual ActivityPtr start_flow(int src_node, int dst_node, double bytes,
                                 const FlowHints& hints) = 0;
  virtual const char* backend_name() const = 0;
};

class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;
  // Burn `flops` on `node`; completes when done under the CPU-sharing model.
  virtual ActivityPtr execute(int node, double flops) = 0;
  // Nominal speed of a node in flop/s (used to convert measured host seconds
  // into target flops, §3.1).
  virtual double node_speed(int node) const = 0;
};

}  // namespace smpi::sim
