// A simulated process: user code running on a cooperative context, pinned to
// a node of the simulated platform.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/context.hpp"

namespace smpi::sim {

class Engine;
class Activity;

class Actor {
 public:
  enum class State { kReady, kRunning, kBlocked, kDead };

  int pid() const { return pid_; }
  int node() const { return node_; }
  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool alive() const { return state_ != State::kDead; }

  // Opaque slot for higher layers (the MPI layer hangs its per-process data
  // here). Not owned.
  void* user_data = nullptr;

 private:
  friend class Engine;
  Actor(Engine* engine, int pid, int node, std::string name);

  Engine* engine_;
  int pid_;
  int node_;
  std::string name_;
  State state_ = State::kReady;
  std::unique_ptr<Context> context_;
};

}  // namespace smpi::sim
