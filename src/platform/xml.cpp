#include "platform/xml.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

namespace smpi::platform {

const std::string* XmlElement::find_attribute(const std::string& attr_name) const {
  for (const auto& attr : attributes) {
    if (attr.name == attr_name) return &attr.value;
  }
  return nullptr;
}

const std::string& XmlElement::attribute(const std::string& attr_name) const {
  const std::string* value = find_attribute(attr_name);
  if (value == nullptr) {
    throw XmlError("element <" + name + "> is missing attribute '" + attr_name + "'", line);
  }
  return *value;
}

std::string XmlElement::attribute_or(const std::string& attr_name,
                                     const std::string& fallback) const {
  const std::string* value = find_attribute(attr_name);
  return value == nullptr ? fallback : *value;
}

std::vector<const XmlElement*> XmlElement::children_named(const std::string& child_name) const {
  std::vector<const XmlElement*> out;
  for (const auto& child : children) {
    if (child->name == child_name) out.push_back(child.get());
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::unique_ptr<XmlElement> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (!at_end()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const { throw XmlError(message, line_); }

  bool at_end() const { return pos_ >= text_.size(); }

  char peek() const { return at_end() ? '\0' : text_[pos_]; }

  char get() {
    if (at_end()) fail("unexpected end of document");
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool consume(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    for (std::size_t i = 0; i < literal.size(); ++i) get();
    return true;
  }

  void expect(const std::string& literal) {
    if (!consume(literal)) fail("expected '" + literal + "'");
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) get();
  }

  // Whitespace, comments, processing instructions, doctype.
  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (consume("<!--")) {
        while (!consume("-->")) get();
      } else if (consume("<?")) {
        while (!consume("?>")) get();
      } else if (consume("<!DOCTYPE")) {
        int depth = 1;
        while (depth > 0) {
          const char c = get();
          if (c == '<') ++depth;
          if (c == '>') --depth;
        }
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
           c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!at_end() && is_name_char(peek())) name.push_back(get());
    if (name.empty()) fail("expected a name");
    return name;
  }

  std::string decode_entities(const std::string& raw) {
    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string::npos) fail("unterminated entity");
      const std::string entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else {
        fail("unknown entity '&" + entity + ";'");
      }
      i = semi;
    }
    return out;
  }

  XmlAttribute parse_attribute() {
    XmlAttribute attr;
    attr.name = parse_name();
    skip_whitespace();
    expect("=");
    skip_whitespace();
    const char quote = get();
    if (quote != '"' && quote != '\'') fail("attribute value must be quoted");
    std::string raw;
    while (peek() != quote) raw.push_back(get());
    get();  // closing quote
    attr.value = decode_entities(raw);
    return attr;
  }

  std::unique_ptr<XmlElement> parse_element() {
    expect("<");
    auto element = std::make_unique<XmlElement>();
    element->line = line_;
    element->name = parse_name();
    while (true) {
      skip_whitespace();
      if (consume("/>")) return element;
      if (consume(">")) break;
      element->attributes.push_back(parse_attribute());
    }
    // Content until matching close tag.
    while (true) {
      if (text_.compare(pos_, 2, "</") == 0) {
        expect("</");
        const std::string closing = parse_name();
        if (closing != element->name) {
          fail("mismatched closing tag </" + closing + "> for <" + element->name + ">");
        }
        skip_whitespace();
        expect(">");
        return element;
      }
      if (text_.compare(pos_, 4, "<!--") == 0) {
        expect("<!--");
        while (!consume("-->")) get();
        continue;
      }
      if (peek() == '<') {
        element->children.push_back(parse_element());
        continue;
      }
      std::string raw;
      while (!at_end() && peek() != '<') raw.push_back(get());
      element->text += decode_entities(raw);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::unique_ptr<XmlElement> parse_xml(const std::string& document) {
  return Parser(document).parse_document();
}

std::unique_ptr<XmlElement> parse_xml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw XmlError("cannot open file '" + path + "'", 0);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  return parse_xml(text);
}

}  // namespace smpi::platform
