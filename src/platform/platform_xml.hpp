// Loading a Platform from a SimGrid-DTD-like XML specification (§6):
//
//   <platform version="4">
//     <host id="node-0" speed="10Gf" cores="8"/>
//     <link id="l0" bandwidth="125MBps" latency="50us" sharing="SHARED"/>
//     <route src="node-0" dst="node-1" symmetric="YES">
//       <link_ctn id="l0"/>
//     </route>
//     <cluster id="c" prefix="node-" radical="0-15" speed="10Gf" cores="8"
//              bw="125MBps" lat="50us"/>
//   </platform>
//
// <cluster> expands to a flat cluster (one non-blocking switch).
#pragma once

#include <string>

#include "platform/platform.hpp"
#include "platform/xml.hpp"

namespace smpi::platform {

Platform load_platform(const XmlElement& root);
Platform load_platform_from_string(const std::string& document);
Platform load_platform_from_file(const std::string& path);

// "0-15" or "0-3,8-11,40" -> {0..15} etc. Exposed for tests.
std::vector<int> parse_radical(const std::string& text);

}  // namespace smpi::platform
