#include "platform/platform_xml.hpp"

#include "platform/builders.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace smpi::platform {
namespace {

LinkSharing parse_sharing(const std::string& text, int line) {
  if (text == "SHARED" || text == "shared") return LinkSharing::kShared;
  if (text == "FATPIPE" || text == "fatpipe") return LinkSharing::kFatpipe;
  throw XmlError("unknown link sharing policy '" + text + "'", line);
}

void expand_cluster(Platform& p, const XmlElement& el) {
  const std::string prefix = el.attribute_or("prefix", el.attribute("id") + "-");
  const std::string suffix = el.attribute_or("suffix", "");
  const auto ids = parse_radical(el.attribute("radical"));
  const double speed = smpi::util::parse_flops(el.attribute("speed"));
  const int cores = std::stoi(el.attribute_or("cores", "1"));
  const double bw = smpi::util::parse_bandwidth(el.attribute("bw"));
  const double lat = smpi::util::parse_duration(el.attribute("lat"));

  std::vector<int> hosts, up, down;
  hosts.reserve(ids.size());
  for (int id : ids) {
    const std::string name = prefix + std::to_string(id) + suffix;
    hosts.push_back(p.add_host({name, speed, cores}));
    up.push_back(p.add_link({"up-" + name, bw, lat, LinkSharing::kShared}));
    down.push_back(p.add_link({"down-" + name, bw, lat, LinkSharing::kShared}));
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      if (i == j) continue;
      p.add_route(hosts[i], hosts[j], {up[i], down[j]}, /*symmetric=*/false);
    }
  }
}

}  // namespace

std::vector<int> parse_radical(const std::string& text) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string chunk = text.substr(pos, comma - pos);
    SMPI_REQUIRE(!chunk.empty(), "empty radical chunk in '" + text + "'");
    const auto dash = chunk.find('-');
    if (dash == std::string::npos) {
      out.push_back(std::stoi(chunk));
    } else {
      const int lo = std::stoi(chunk.substr(0, dash));
      const int hi = std::stoi(chunk.substr(dash + 1));
      SMPI_REQUIRE(lo <= hi, "descending radical range in '" + text + "'");
      for (int v = lo; v <= hi; ++v) out.push_back(v);
    }
    pos = comma + 1;
  }
  return out;
}

Platform load_platform(const XmlElement& root) {
  if (root.name != "platform") {
    throw XmlError("root element must be <platform>, got <" + root.name + ">", root.line);
  }
  Platform p;
  for (const auto& child : root.children) {
    const XmlElement& el = *child;
    if (el.name == "host") {
      HostSpec spec;
      spec.name = el.attribute("id");
      spec.speed_flops = smpi::util::parse_flops(el.attribute("speed"));
      spec.cores = std::stoi(el.attribute_or("cores", "1"));
      p.add_host(std::move(spec));
    } else if (el.name == "link") {
      LinkSpec spec;
      spec.name = el.attribute("id");
      spec.bandwidth_bps = smpi::util::parse_bandwidth(el.attribute("bandwidth"));
      spec.latency_s = smpi::util::parse_duration(el.attribute("latency"));
      spec.sharing = parse_sharing(el.attribute_or("sharing", "SHARED"), el.line);
      p.add_link(std::move(spec));
    } else if (el.name == "route") {
      const int src = p.find_host(el.attribute("src"));
      const int dst = p.find_host(el.attribute("dst"));
      if (src < 0) throw XmlError("route src '" + el.attribute("src") + "' unknown", el.line);
      if (dst < 0) throw XmlError("route dst '" + el.attribute("dst") + "' unknown", el.line);
      const bool symmetric = el.attribute_or("symmetric", "YES") != "NO";
      std::vector<int> links;
      for (const auto* ctn : el.children_named("link_ctn")) {
        const int link = p.find_link(ctn->attribute("id"));
        if (link < 0) throw XmlError("link '" + ctn->attribute("id") + "' unknown", ctn->line);
        links.push_back(link);
      }
      if (links.empty()) throw XmlError("route needs at least one <link_ctn>", el.line);
      p.add_route(src, dst, std::move(links), symmetric);
    } else if (el.name == "cluster") {
      expand_cluster(p, el);
    } else {
      throw XmlError("unsupported element <" + el.name + ">", el.line);
    }
  }
  return p;
}

Platform load_platform_from_string(const std::string& document) {
  return load_platform(*parse_xml(document));
}

Platform load_platform_from_file(const std::string& path) {
  return load_platform(*parse_xml_file(path));
}

}  // namespace smpi::platform
