// Target-platform description (§6 of the paper): hosts with a flop/s rating,
// links with bandwidth/latency/sharing policy, and static multi-hop routes
// between host pairs. Instances are built programmatically (builders.hpp)
// or parsed from a SimGrid-DTD-like XML file (xml.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace smpi::platform {

enum class LinkSharing {
  kShared,   // capacity is shared by the flows crossing the link
  kFatpipe,  // each flow gets the full capacity (e.g. an idealized backbone)
};

struct HostSpec {
  std::string name;
  double speed_flops = 1e9;
  int cores = 1;
};

struct LinkSpec {
  std::string name;
  double bandwidth_bps = 0;  // bytes per second
  double latency_s = 0;
  LinkSharing sharing = LinkSharing::kShared;
};

class Platform {
 public:
  int add_host(HostSpec spec);
  int add_link(LinkSpec spec);
  // Register the links crossed from src to dst (in order). With symmetric =
  // true the reverse route is registered too (same links, reversed order).
  void add_route(int src_host, int dst_host, std::vector<int> links, bool symmetric = true);

  // In-place parameter overrides (what-if campaigns): routes and names stay,
  // only the rating changes. Values must satisfy the same contracts as
  // add_host/add_link (positive speed/bandwidth, non-negative latency).
  void set_host_speed(int id, double speed_flops);
  void set_link_bandwidth(int id, double bandwidth_bps);
  void set_link_latency(int id, double latency_s);

  int host_count() const { return static_cast<int>(hosts_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }
  const HostSpec& host(int id) const;
  const LinkSpec& link(int id) const;
  // -1 when absent.
  int find_host(const std::string& name) const;
  int find_link(const std::string& name) const;

  bool has_route(int src_host, int dst_host) const;
  // Throws if no route is registered (routes to self are the empty list and
  // need not be registered).
  const std::vector<int>& route(int src_host, int dst_host) const;

  // Aggregates used by the network models.
  double route_latency(int src_host, int dst_host) const;
  double route_min_bandwidth(int src_host, int dst_host) const;
  // Number of switching elements a route crosses (#links - 1, floor 0):
  // useful to sanity-check topologies like the 3-switch gdx routes.
  int route_hop_count(int src_host, int dst_host) const;

 private:
  static std::uint64_t key(int src, int dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }

  std::vector<HostSpec> hosts_;
  std::vector<LinkSpec> links_;
  std::unordered_map<std::string, int> host_index_;
  std::unordered_map<std::string, int> link_index_;
  std::unordered_map<std::uint64_t, std::vector<int>> routes_;
  std::vector<int> empty_route_;
};

}  // namespace smpi::platform
