#include "platform/builders.hpp"

#include <numeric>

#include "util/check.hpp"

namespace smpi::platform {

Platform build_flat_cluster(const FlatClusterParams& params) {
  SMPI_REQUIRE(params.nodes >= 1, "cluster needs at least one node");
  Platform p;
  std::vector<int> up(params.nodes), down(params.nodes);
  for (int i = 0; i < params.nodes; ++i) {
    const std::string id = params.prefix + std::to_string(i);
    p.add_host({id, params.speed_flops, params.cores});
    up[i] = p.add_link({"up-" + id, params.link_bandwidth_bps, params.link_latency_s,
                        LinkSharing::kShared});
    down[i] = p.add_link({"down-" + id, params.link_bandwidth_bps, params.link_latency_s,
                          LinkSharing::kShared});
  }
  for (int i = 0; i < params.nodes; ++i) {
    for (int j = 0; j < params.nodes; ++j) {
      if (i == j) continue;
      p.add_route(i, j, {up[i], down[j]}, /*symmetric=*/false);
    }
  }
  return p;
}

Platform build_hierarchical_cluster(const HierarchicalClusterParams& params) {
  SMPI_REQUIRE(!params.cabinet_sizes.empty(), "need at least one cabinet");
  SMPI_REQUIRE(params.cabinets_per_switch >= 1, "cabinets_per_switch must be >= 1");
  Platform p;
  const int total_nodes =
      std::accumulate(params.cabinet_sizes.begin(), params.cabinet_sizes.end(), 0);
  SMPI_REQUIRE(total_nodes >= 1, "cluster needs at least one node");

  const int num_cabinets = static_cast<int>(params.cabinet_sizes.size());
  const int num_switches =
      (num_cabinets + params.cabinets_per_switch - 1) / params.cabinets_per_switch;

  std::vector<int> up(static_cast<std::size_t>(total_nodes));
  std::vector<int> down(static_cast<std::size_t>(total_nodes));
  std::vector<int> node_switch(static_cast<std::size_t>(total_nodes));
  int node = 0;
  for (int cab = 0; cab < num_cabinets; ++cab) {
    for (int k = 0; k < params.cabinet_sizes[static_cast<std::size_t>(cab)]; ++k, ++node) {
      const std::string id = params.prefix + std::to_string(node);
      p.add_host({id, params.speed_flops, params.cores});
      up[static_cast<std::size_t>(node)] =
          p.add_link({"up-" + id, params.node_bandwidth_bps, params.node_latency_s,
                      LinkSharing::kShared});
      down[static_cast<std::size_t>(node)] =
          p.add_link({"down-" + id, params.node_bandwidth_bps, params.node_latency_s,
                      LinkSharing::kShared});
      node_switch[static_cast<std::size_t>(node)] = cab / params.cabinets_per_switch;
    }
  }

  // Per first-level switch: an uplink pair to the second-level switch.
  std::vector<int> sw_up(static_cast<std::size_t>(num_switches));
  std::vector<int> sw_down(static_cast<std::size_t>(num_switches));
  for (int s = 0; s < num_switches; ++s) {
    sw_up[static_cast<std::size_t>(s)] =
        p.add_link({"swup-" + std::to_string(s), params.uplink_bandwidth_bps,
                    params.uplink_latency_s, LinkSharing::kShared});
    sw_down[static_cast<std::size_t>(s)] =
        p.add_link({"swdown-" + std::to_string(s), params.uplink_bandwidth_bps,
                    params.uplink_latency_s, LinkSharing::kShared});
  }

  for (int i = 0; i < total_nodes; ++i) {
    for (int j = 0; j < total_nodes; ++j) {
      if (i == j) continue;
      const int si = node_switch[static_cast<std::size_t>(i)];
      const int sj = node_switch[static_cast<std::size_t>(j)];
      if (si == sj) {
        p.add_route(i, j, {up[static_cast<std::size_t>(i)], down[static_cast<std::size_t>(j)]},
                    /*symmetric=*/false);
      } else {
        p.add_route(i, j,
                    {up[static_cast<std::size_t>(i)], sw_up[static_cast<std::size_t>(si)],
                     sw_down[static_cast<std::size_t>(sj)], down[static_cast<std::size_t>(j)]},
                    /*symmetric=*/false);
      }
    }
  }
  return p;
}

HierarchicalClusterParams griffon_params() {
  HierarchicalClusterParams params;
  params.prefix = "griffon-";
  params.cabinet_sizes = {33, 27, 32};
  params.cabinets_per_switch = 1;
  // 2.5 GHz dual quad-core Xeon L5420: ~8 cores x 2.5e9 x 4 flops/cycle; we
  // rate single-core throughput, which the CPU model uses per process.
  params.speed_flops = 1e10;
  params.cores = 8;
  params.node_bandwidth_bps = 125e6;  // GbE
  params.node_latency_s = 50e-6;
  params.uplink_bandwidth_bps = 1.25e9;  // 10 GbE second level
  params.uplink_latency_s = 20e-6;
  return params;
}

HierarchicalClusterParams gdx_params() {
  HierarchicalClusterParams params;
  params.prefix = "gdx-";
  // 312 nodes over 36 cabinets: 24 cabinets of 9 nodes + 12 of 8.
  params.cabinet_sizes.assign(24, 9);
  params.cabinet_sizes.insert(params.cabinet_sizes.end(), 12, 8);
  params.cabinets_per_switch = 2;
  // 2.0 GHz dual Opteron 246 (single core each).
  params.speed_flops = 4e9;
  params.cores = 2;
  params.node_bandwidth_bps = 125e6;
  params.node_latency_s = 60e-6;
  params.uplink_bandwidth_bps = 125e6;  // GbE second level (per the paper)
  params.uplink_latency_s = 30e-6;
  return params;
}

Platform build_griffon() { return build_hierarchical_cluster(griffon_params()); }

Platform build_gdx() { return build_hierarchical_cluster(gdx_params()); }

int first_node_of_cabinet(const HierarchicalClusterParams& params, int cabinet) {
  SMPI_REQUIRE(cabinet >= 0 && cabinet < static_cast<int>(params.cabinet_sizes.size()),
               "cabinet out of range");
  int node = 0;
  for (int c = 0; c < cabinet; ++c) node += params.cabinet_sizes[static_cast<std::size_t>(c)];
  return node;
}

}  // namespace smpi::platform
