// Programmatic platform builders, including models of the two Grid'5000
// clusters the paper evaluates on (§7):
//
//  * griffon — 92 dual-quad-core 2.5 GHz Xeon nodes in 3 cabinets (33/27/32),
//    GbE to the cabinet switch, cabinet switches linked by 10 GbE to a
//    second-level switch;
//  * gdx — 312 dual 2.0 GHz Opteron nodes across 36 cabinets, two cabinets
//    per switch, switches linked by GbE to one second-level switch, so two
//    distant nodes communicate across three switches.
//
// Every node has one full-duplex NIC modeled as an "up" and a "down" link;
// inter-switch hops are explicit links, so route_hop_count() counts switches.
#pragma once

#include <string>
#include <vector>

#include "platform/platform.hpp"

namespace smpi::platform {

struct FlatClusterParams {
  std::string prefix = "node-";
  int nodes = 16;
  double speed_flops = 1e10;
  int cores = 8;
  double link_bandwidth_bps = 125e6;  // GbE in bytes/s
  double link_latency_s = 50e-6;
};

// All nodes behind one non-blocking switch; route i->j = [up_i, down_j].
Platform build_flat_cluster(const FlatClusterParams& params);

struct HierarchicalClusterParams {
  std::string prefix = "node-";
  std::vector<int> cabinet_sizes;
  int cabinets_per_switch = 1;
  double speed_flops = 1e10;
  int cores = 8;
  double node_bandwidth_bps = 125e6;
  double node_latency_s = 50e-6;
  // Links between a cabinet-level switch and the second-level switch.
  double uplink_bandwidth_bps = 1.25e9;
  double uplink_latency_s = 20e-6;
};

// Multi-cabinet cluster with a two-level switch hierarchy. Nodes in cabinets
// sharing a switch communicate through 1 switch (2 links); distant nodes
// through 3 switches (4 links).
Platform build_hierarchical_cluster(const HierarchicalClusterParams& params);

// The paper's calibration cluster.
Platform build_griffon();
// The paper's validation cluster.
Platform build_gdx();

// Index of some node in `cabinet` (0-based), for picking distant pairs.
int first_node_of_cabinet(const HierarchicalClusterParams& params, int cabinet);

HierarchicalClusterParams griffon_params();
HierarchicalClusterParams gdx_params();

}  // namespace smpi::platform
