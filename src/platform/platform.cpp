#include "platform/platform.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace smpi::platform {

int Platform::add_host(HostSpec spec) {
  SMPI_REQUIRE(!spec.name.empty(), "host needs a name");
  SMPI_REQUIRE(host_index_.find(spec.name) == host_index_.end(),
               "duplicate host '" + spec.name + "'");
  SMPI_REQUIRE(spec.speed_flops > 0, "host speed must be positive");
  SMPI_REQUIRE(spec.cores >= 1, "host needs at least one core");
  const int id = static_cast<int>(hosts_.size());
  host_index_.emplace(spec.name, id);
  hosts_.push_back(std::move(spec));
  return id;
}

int Platform::add_link(LinkSpec spec) {
  SMPI_REQUIRE(!spec.name.empty(), "link needs a name");
  SMPI_REQUIRE(link_index_.find(spec.name) == link_index_.end(),
               "duplicate link '" + spec.name + "'");
  SMPI_REQUIRE(spec.bandwidth_bps > 0, "link bandwidth must be positive");
  SMPI_REQUIRE(spec.latency_s >= 0, "link latency must be >= 0");
  const int id = static_cast<int>(links_.size());
  link_index_.emplace(spec.name, id);
  links_.push_back(std::move(spec));
  return id;
}

void Platform::add_route(int src_host, int dst_host, std::vector<int> links, bool symmetric) {
  SMPI_REQUIRE(src_host >= 0 && src_host < host_count(), "route src out of range");
  SMPI_REQUIRE(dst_host >= 0 && dst_host < host_count(), "route dst out of range");
  SMPI_REQUIRE(src_host != dst_host, "route to self is implicit");
  for (int link : links) {
    SMPI_REQUIRE(link >= 0 && link < link_count(), "route references unknown link");
  }
  routes_[key(src_host, dst_host)] = links;
  if (symmetric) {
    std::reverse(links.begin(), links.end());
    routes_[key(dst_host, src_host)] = std::move(links);
  }
}

void Platform::set_host_speed(int id, double speed_flops) {
  SMPI_REQUIRE(id >= 0 && id < host_count(), "host id out of range");
  SMPI_REQUIRE(speed_flops > 0, "host speed must be positive");
  hosts_[static_cast<std::size_t>(id)].speed_flops = speed_flops;
}

void Platform::set_link_bandwidth(int id, double bandwidth_bps) {
  SMPI_REQUIRE(id >= 0 && id < link_count(), "link id out of range");
  SMPI_REQUIRE(bandwidth_bps > 0, "link bandwidth must be positive");
  links_[static_cast<std::size_t>(id)].bandwidth_bps = bandwidth_bps;
}

void Platform::set_link_latency(int id, double latency_s) {
  SMPI_REQUIRE(id >= 0 && id < link_count(), "link id out of range");
  SMPI_REQUIRE(latency_s >= 0, "link latency must be >= 0");
  links_[static_cast<std::size_t>(id)].latency_s = latency_s;
}

const HostSpec& Platform::host(int id) const {
  SMPI_REQUIRE(id >= 0 && id < host_count(), "host id out of range");
  return hosts_[static_cast<std::size_t>(id)];
}

const LinkSpec& Platform::link(int id) const {
  SMPI_REQUIRE(id >= 0 && id < link_count(), "link id out of range");
  return links_[static_cast<std::size_t>(id)];
}

int Platform::find_host(const std::string& name) const {
  auto it = host_index_.find(name);
  return it == host_index_.end() ? -1 : it->second;
}

int Platform::find_link(const std::string& name) const {
  auto it = link_index_.find(name);
  return it == link_index_.end() ? -1 : it->second;
}

bool Platform::has_route(int src_host, int dst_host) const {
  if (src_host == dst_host) return true;
  return routes_.find(key(src_host, dst_host)) != routes_.end();
}

const std::vector<int>& Platform::route(int src_host, int dst_host) const {
  if (src_host == dst_host) return empty_route_;
  auto it = routes_.find(key(src_host, dst_host));
  SMPI_REQUIRE(it != routes_.end(), "no route from '" + host(src_host).name + "' to '" +
                                        host(dst_host).name + "'");
  return it->second;
}

double Platform::route_latency(int src_host, int dst_host) const {
  double total = 0;
  for (int id : route(src_host, dst_host)) total += link(id).latency_s;
  return total;
}

double Platform::route_min_bandwidth(int src_host, int dst_host) const {
  const auto& links = route(src_host, dst_host);
  SMPI_REQUIRE(!links.empty(), "route with no links has no bandwidth");
  double min_bw = link(links.front()).bandwidth_bps;
  for (int id : links) min_bw = std::min(min_bw, link(id).bandwidth_bps);
  return min_bw;
}

int Platform::route_hop_count(int src_host, int dst_host) const {
  const auto n = static_cast<int>(route(src_host, dst_host).size());
  return std::max(0, n - 1);
}

}  // namespace smpi::platform
