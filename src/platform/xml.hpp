// A small, dependency-free XML subset parser, sufficient for SimGrid-style
// platform files: elements, attributes, self-closing tags, comments, XML
// declarations, character entities. No namespaces, CDATA or DTD validation.
//
// Grammar errors throw XmlError with a line number.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace smpi::platform {

class XmlError : public std::runtime_error {
 public:
  XmlError(const std::string& message, int line)
      : std::runtime_error("XML error at line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct XmlAttribute {
  std::string name;
  std::string value;
};

struct XmlElement {
  std::string name;
  std::vector<XmlAttribute> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;  // concatenated character data
  int line = 0;

  // nullptr when the attribute is absent.
  const std::string* find_attribute(const std::string& attr_name) const;
  // Throws XmlError when absent.
  const std::string& attribute(const std::string& attr_name) const;
  std::string attribute_or(const std::string& attr_name, const std::string& fallback) const;
  std::vector<const XmlElement*> children_named(const std::string& child_name) const;
};

// Parses a complete document; returns its root element.
std::unique_ptr<XmlElement> parse_xml(const std::string& document);
std::unique_ptr<XmlElement> parse_xml_file(const std::string& path);

}  // namespace smpi::platform
