#include "noise/noise.hpp"

#include <algorithm>
#include <cmath>

#include "platform/platform.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace smpi::noise {

namespace {

// One standard-normal variate (Box-Muller, using only the cosine branch so
// each variate costs a fixed two uniforms — a fixed draw budget keeps the
// stream position independent of the sampled values).
double standard_normal(util::Xoshiro256StarStar& rng) {
  double u1 = rng.next_double();
  const double u2 = rng.next_double();
  // next_double() can return 0; log(0) would poison the sample.
  if (u1 <= 0) u1 = 5e-324;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double require_number(const util::JsonValue& obj, const char* key, const std::string& what) {
  const util::JsonValue& v = obj.at(key, what);
  SMPI_REQUIRE(v.is_number(), "noise spec: " + what + " \"" + key + "\" must be a number");
  return v.as_number();
}

}  // namespace

double Distribution::sample(util::Xoshiro256StarStar& rng) const {
  switch (kind) {
    case Kind::kConstant:
      return value;
    case Kind::kUniform:
      return lo + rng.next_double() * (hi - lo);
    case Kind::kNormal:
      return mean + sigma * standard_normal(rng);
    case Kind::kLognormal:
      return std::exp(mu + sigma * standard_normal(rng));
    case Kind::kHistogram: {
      // Pick a bin by cumulative weight, then a uniform point inside it.
      double total = 0;
      for (double w : weights) total += w;
      const double u = rng.next_double() * total;
      double acc = 0;
      std::size_t bin = weights.size() - 1;
      for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (u < acc) {
          bin = i;
          break;
        }
      }
      return edges[bin] + rng.next_double() * (edges[bin + 1] - edges[bin]);
    }
  }
  return value;  // unreachable
}

bool Distribution::degenerate(double* out) const {
  switch (kind) {
    case Kind::kConstant:
      *out = value;
      return true;
    case Kind::kUniform:
      if (lo == hi) {
        *out = lo;
        return true;
      }
      return false;
    case Kind::kNormal:
      if (sigma == 0) {
        *out = mean;
        return true;
      }
      return false;
    case Kind::kLognormal:
      if (sigma == 0) {
        *out = std::exp(mu);
        return true;
      }
      return false;
    case Kind::kHistogram: {
      // Degenerate only if every bin with weight collapses to one point.
      double point = 0;
      bool seen = false;
      for (std::size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] == 0) continue;
        if (edges[i] != edges[i + 1]) return false;
        if (seen && edges[i] != point) return false;
        point = edges[i];
        seen = true;
      }
      *out = seen ? point : 0;
      return true;
    }
  }
  return false;
}

bool Distribution::is_identity(double id) const {
  double point = 0;
  return degenerate(&point) && point == id;
}

Distribution Distribution::parse(const util::JsonValue& v, const std::string& what) {
  Distribution d;
  if (v.is_number()) {
    d.kind = Kind::kConstant;
    d.value = v.as_number();
    return d;
  }
  SMPI_REQUIRE(v.is_object(), "noise spec: " + what + " must be a number or an object");
  const util::JsonValue& kind = v.at("dist", what);
  SMPI_REQUIRE(kind.is_string(), "noise spec: " + what + " \"dist\" must be a string");
  const std::string& name = kind.as_string();
  if (name == "constant") {
    d.kind = Kind::kConstant;
    d.value = require_number(v, "value", what);
  } else if (name == "uniform") {
    d.kind = Kind::kUniform;
    d.lo = require_number(v, "lo", what);
    d.hi = require_number(v, "hi", what);
    SMPI_REQUIRE(d.lo <= d.hi, "noise spec: " + what + " uniform needs lo <= hi");
  } else if (name == "normal") {
    d.kind = Kind::kNormal;
    d.mean = require_number(v, "mean", what);
    d.sigma = require_number(v, "sigma", what);
    SMPI_REQUIRE(d.sigma >= 0, "noise spec: " + what + " normal needs sigma >= 0");
  } else if (name == "lognormal") {
    d.kind = Kind::kLognormal;
    d.mu = require_number(v, "mu", what);
    d.sigma = require_number(v, "sigma", what);
    SMPI_REQUIRE(d.sigma >= 0, "noise spec: " + what + " lognormal needs sigma >= 0");
  } else if (name == "histogram") {
    d.kind = Kind::kHistogram;
    const util::JsonValue& edges = v.at("edges", what);
    const util::JsonValue& weights = v.at("weights", what);
    SMPI_REQUIRE(edges.is_array() && weights.is_array(),
                 "noise spec: " + what + " histogram needs \"edges\" and \"weights\" arrays");
    for (const util::JsonValue& e : edges.items()) {
      SMPI_REQUIRE(e.is_number(), "noise spec: " + what + " histogram edges must be numbers");
      d.edges.push_back(e.as_number());
    }
    for (const util::JsonValue& w : weights.items()) {
      SMPI_REQUIRE(w.is_number() && w.as_number() >= 0,
                   "noise spec: " + what + " histogram weights must be non-negative numbers");
      d.weights.push_back(w.as_number());
    }
    SMPI_REQUIRE(d.edges.size() >= 2 && d.weights.size() + 1 == d.edges.size(),
                 "noise spec: " + what + " histogram needs n+1 edges for n weights");
    for (std::size_t i = 0; i + 1 < d.edges.size(); ++i) {
      SMPI_REQUIRE(d.edges[i] <= d.edges[i + 1],
                   "noise spec: " + what + " histogram edges must be ascending");
    }
    double total = 0;
    for (double w : d.weights) total += w;
    SMPI_REQUIRE(total > 0, "noise spec: " + what + " histogram needs positive total weight");
  } else {
    SMPI_REQUIRE(false, "noise spec: " + what + " unknown dist \"" + name +
                            "\" (expected constant, uniform, normal, lognormal, or histogram)");
  }
  return d;
}

bool NoiseSpec::null_effect() const {
  if (has_host_speed && !host_speed.is_identity(1.0)) return false;
  if (has_link_bandwidth && !link_bandwidth.is_identity(1.0)) return false;
  if (has_link_latency && !link_latency.is_identity(1.0)) return false;
  if (has_message_jitter && !message_jitter.is_identity(0.0)) return false;
  return true;
}

NoiseSpec NoiseSpec::parse(const util::JsonValue& root) {
  SMPI_REQUIRE(root.is_object(), "noise spec: root must be a JSON object");
  NoiseSpec spec;
  if (const util::JsonValue* seed = root.find("seed")) {
    SMPI_REQUIRE(seed->is_number() && seed->as_number() >= 0,
                 "noise spec: \"seed\" must be a number >= 0");
    spec.seed = static_cast<std::uint64_t>(seed->as_number());
  }
  if (const util::JsonValue* v = root.find("host_speed")) {
    spec.host_speed = Distribution::parse(*v, "host_speed");
    spec.has_host_speed = true;
  }
  if (const util::JsonValue* v = root.find("link_bandwidth")) {
    spec.link_bandwidth = Distribution::parse(*v, "link_bandwidth");
    spec.has_link_bandwidth = true;
  }
  if (const util::JsonValue* v = root.find("link_latency")) {
    spec.link_latency = Distribution::parse(*v, "link_latency");
    spec.has_link_latency = true;
  }
  if (const util::JsonValue* v = root.find("message_jitter")) {
    spec.message_jitter = Distribution::parse(*v, "message_jitter");
    spec.has_message_jitter = true;
  }
  return spec;
}

NoiseSpec NoiseSpec::parse_text(const std::string& text) {
  std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{') {
    return parse(util::parse_json(text, "noise spec"));
  }
  return parse_file(text);
}

NoiseSpec NoiseSpec::parse_file(const std::string& path) {
  return parse(util::parse_json_file(path));
}

std::uint64_t replication_seed(std::uint64_t noise_seed, int rep) {
  return util::mix_stream(noise_seed, util::stream_class::kNoiseReplication,
                          static_cast<std::uint64_t>(rep));
}

void apply_platform_noise(platform::Platform& platform, const NoiseSpec& spec) {
  namespace sc = util::stream_class;
  // Each (channel, entity) pair gets its own generator: perturbing host 7
  // draws the same factor no matter how many hosts exist or which other
  // channels are enabled.
  if (spec.has_host_speed && !spec.host_speed.is_identity(1.0)) {
    for (int i = 0; i < platform.host_count(); ++i) {
      util::Xoshiro256StarStar rng(
          util::mix_stream(spec.seed, sc::kNoiseHostSpeed, static_cast<std::uint64_t>(i)));
      const double factor = spec.host_speed.sample(rng);
      SMPI_REQUIRE(factor > 0, "noise spec: host_speed factor must stay > 0 (got " +
                                   std::to_string(factor) + "); tighten the distribution");
      platform.set_host_speed(i, platform.host(i).speed_flops * factor);
    }
  }
  if (spec.has_link_bandwidth && !spec.link_bandwidth.is_identity(1.0)) {
    for (int i = 0; i < platform.link_count(); ++i) {
      util::Xoshiro256StarStar rng(
          util::mix_stream(spec.seed, sc::kNoiseLinkBandwidth, static_cast<std::uint64_t>(i)));
      const double factor = spec.link_bandwidth.sample(rng);
      SMPI_REQUIRE(factor > 0, "noise spec: link_bandwidth factor must stay > 0 (got " +
                                   std::to_string(factor) + "); tighten the distribution");
      platform.set_link_bandwidth(i, platform.link(i).bandwidth_bps * factor);
    }
  }
  if (spec.has_link_latency && !spec.link_latency.is_identity(1.0)) {
    for (int i = 0; i < platform.link_count(); ++i) {
      util::Xoshiro256StarStar rng(
          util::mix_stream(spec.seed, sc::kNoiseLinkLatency, static_cast<std::uint64_t>(i)));
      const double factor = spec.link_latency.sample(rng);
      SMPI_REQUIRE(factor >= 0, "noise spec: link_latency factor must stay >= 0 (got " +
                                    std::to_string(factor) + "); tighten the distribution");
      platform.set_link_latency(i, platform.link(i).latency_s * factor);
    }
  }
}

double MessageJitter::sample(int src, int dst) {
  const std::uint64_t pair = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
                             static_cast<std::uint32_t>(dst);
  util::Xoshiro256StarStar rng(
      util::mix_stream(seed_, util::stream_class::kNoiseMessageJitter, pair, draws_++));
  return std::max(0.0, dist_.sample(rng));
}

}  // namespace smpi::noise
