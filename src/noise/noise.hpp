// Stochastic noise models — per-entity platform perturbation and
// per-message latency jitter, declaratively specified and bit-reproducible.
//
// The deterministic predictions the simulator makes are one sample from a
// distribution the real cluster draws from: per-node compute speed and
// per-link performance fluctuate, and tuning verdicts taken from a single
// run can flip under realistic noise ("Variability Matters", Cornebize &
// Legrand). A NoiseSpec makes that variability a first-class input:
//
//   {
//     "seed": 42,
//     "host_speed":     {"dist": "normal", "mean": 1.0, "sigma": 0.05},
//     "link_bandwidth": {"dist": "uniform", "lo": 0.9, "hi": 1.0},
//     "link_latency":   {"dist": "lognormal", "mu": 0.0, "sigma": 0.1},
//     "message_jitter": {"dist": "normal", "mean": 0, "sigma": 2e-6}
//   }
//
// host_speed / link_bandwidth / link_latency are *multiplicative* factors
// drawn once per host/link and applied at platform materialization through
// the ordinary Platform mutators — static heterogeneity. message_jitter is
// an *additive* per-message delay in seconds, sampled at the surf network
// action-creation choke point — dynamic noise. Each channel draws from its
// own counter-seeded sub-stream (mix_stream(noise_seed, stream_class,
// entity[, draw]), registry in util/rng.hpp), so runs are bit-reproducible
// per seed, per-entity draws are order-independent, and adding one
// distribution never shifts another's draws.
//
// A missing channel, or one whose distribution is degenerate at the
// identity (factor 1 / jitter 0), installs nothing at all: the simulation
// takes the exact deterministic code path and every simulated time stays
// bit-identical to a noise-free run (the zero-noise canary tests assert
// this for both online runs and offline replay).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smpi::util {
class JsonValue;
class Xoshiro256StarStar;
}  // namespace smpi::util

namespace smpi::platform {
class Platform;
}

namespace smpi::noise {

// One scalar distribution. Parsed from {"dist": ...} JSON (a bare number is
// shorthand for a constant).
struct Distribution {
  enum class Kind { kConstant, kUniform, kNormal, kLognormal, kHistogram };
  Kind kind = Kind::kConstant;
  double value = 1;             // constant
  double lo = 1, hi = 1;        // uniform: [lo, hi)
  double mean = 0, sigma = 0;   // normal: mean + sigma * N(0,1)
  double mu = 0;                // lognormal: exp(mu + sigma * N(0,1))
  std::vector<double> edges;    // histogram: n+1 ascending bin edges
  std::vector<double> weights;  // histogram: n non-negative bin weights

  double sample(util::Xoshiro256StarStar& rng) const;
  // True when every draw returns the same value, stored in *out — the
  // zero-sigma gate the identity guarantee rests on.
  bool degenerate(double* out) const;
  // Degenerate exactly at `id` (1 for multiplicative factors, 0 for
  // additive jitter): the channel is then a provable no-op.
  bool is_identity(double id) const;

  static Distribution parse(const util::JsonValue& v, const std::string& what);
};

struct NoiseSpec {
  std::uint64_t seed = 0;
  Distribution host_speed;
  Distribution link_bandwidth;
  Distribution link_latency;
  Distribution message_jitter;
  bool has_host_speed = false;
  bool has_link_bandwidth = false;
  bool has_link_latency = false;
  bool has_message_jitter = false;

  // No channels at all (the spec was never given).
  bool empty() const {
    return !has_host_speed && !has_link_bandwidth && !has_link_latency && !has_message_jitter;
  }
  // Every present channel is degenerate at its identity: applying the spec
  // is bit-identical to not having one.
  bool null_effect() const;

  static NoiseSpec parse(const util::JsonValue& root);
  // `text` starting with '{' parses as inline JSON, anything else as a path.
  static NoiseSpec parse_text(const std::string& text);
  static NoiseSpec parse_file(const std::string& path);
};

// The noise seed replication `rep` runs under: an independent sub-seed per
// replication (stream_class::kNoiseReplication), so a campaign's
// `replications: N` axis re-runs each scenario over N decorrelated noise
// worlds that are still fully determined by the spec's base seed.
std::uint64_t replication_seed(std::uint64_t noise_seed, int rep);

// Static perturbation: scale every host's flop rate and every link's
// bandwidth/latency by a per-entity draw (identity channels skipped
// entirely). Call at platform materialization, before the world exists.
void apply_platform_noise(platform::Platform& platform, const NoiseSpec& spec);

// Per-message latency jitter sampler, installed into the surf flow model's
// action-creation hook by SmpiWorld when the channel is live. Draw d for a
// src->dst message is seeded mix_stream(seed, kNoiseMessageJitter,
// src << 32 | dst, d) with a per-sampler draw counter — deterministic
// because the simulation's message sequence is. Samples clamp at 0 (a
// negative draw cannot make the network acausal).
class MessageJitter {
 public:
  MessageJitter(const Distribution& dist, std::uint64_t seed)
      : dist_(dist), seed_(seed) {}

  double sample(int src, int dst);
  std::uint64_t draws() const { return draws_; }

 private:
  Distribution dist_;
  std::uint64_t seed_ = 0;
  std::uint64_t draws_ = 0;
};

}  // namespace smpi::noise
