#include "workload/patterns.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace smpi::workload {

namespace {

using trace::TiOp;
using trace::TiRecord;

// Independent sub-streams per (phase, rank) and per (phase, iteration):
// every consumer seeds its own generator from a counter, so no pattern can
// perturb another's draws by consuming more or fewer values. The stream ids
// are phase-derived (phase << 1 | kind), the workload-seed domain's own
// slice of the registry documented in util/rng.hpp.
std::uint64_t mix(std::uint64_t seed, std::uint64_t stream, std::uint64_t index) {
  return util::mix_stream(seed, stream, index);
}

// Per-rank compute-cost stream: a static imbalance factor drawn once plus a
// fresh jitter factor per iteration. Zero-width distributions make no draws
// at all, so flops stay bit-equal to the spec value (the online-equivalence
// tests depend on that).
class ComputeDraw {
 public:
  ComputeDraw(const ComputeSpec& compute, std::uint64_t seed, int phase_index, int rank)
      : compute_(compute), rng_(mix(seed, static_cast<std::uint64_t>(phase_index) << 1,
                                    static_cast<std::uint64_t>(rank))) {
    if (compute_.imbalance > 0) {
      rank_factor_ = 1 + compute_.imbalance * (2 * rng_.next_double() - 1);
    }
  }

  double next() {
    double flops = compute_.flops * rank_factor_;
    if (compute_.jitter > 0) {
      flops *= 1 + compute_.jitter * (2 * rng_.next_double() - 1);
    }
    return flops;
  }

 private:
  ComputeSpec compute_;
  util::Xoshiro256StarStar rng_;
  double rank_factor_ = 1;
};

TiRecord compute_record(double flops) {
  TiRecord r;
  r.op = TiOp::kCompute;
  r.value = flops;
  return r;
}

TiRecord p2p_record(TiOp op, int peer, long long bytes, long long tag, long long req = -1) {
  TiRecord r;
  r.op = op;
  r.peer = peer;
  r.count = bytes;
  r.elem = 1;
  r.tag = tag;
  r.req = req;
  return r;
}

void maybe_compute(std::vector<TiRecord>& out, ComputeDraw& draw, const PhaseSpec& phase) {
  if (phase.compute.flops > 0) out.push_back(compute_record(draw.next()));
}

std::vector<ComputeDraw> make_draws(const WorkloadSpec& spec, const PhaseSpec& phase,
                                    int phase_index) {
  std::vector<ComputeDraw> draws;
  draws.reserve(static_cast<std::size_t>(spec.ranks));
  for (int r = 0; r < spec.ranks; ++r) {
    draws.emplace_back(phase.compute, spec.seed, phase_index, r);
  }
  return draws;
}

// --- grid geometry ----------------------------------------------------------

struct Grid {
  int dims[3] = {1, 1, 1};
  int nd = 2;

  int rank_of(const int coord[3]) const {
    return (coord[2] * dims[1] + coord[1]) * dims[0] + coord[0];
  }
  void coord_of(int rank, int coord[3]) const {
    coord[0] = rank % dims[0];
    coord[1] = (rank / dims[0]) % dims[1];
    coord[2] = rank / (dims[0] * dims[1]);
  }
  // Neighbour on side `direction` (2*axis = minus, 2*axis+1 = plus), or -1
  // when the grid edge is not periodic.
  int neighbor(int rank, int direction, bool periodic) const {
    const int axis = direction / 2;
    const int step = (direction & 1) ? 1 : -1;
    int coord[3];
    coord_of(rank, coord);
    coord[axis] += step;
    if (coord[axis] < 0 || coord[axis] >= dims[axis]) {
      if (!periodic || dims[axis] == 1) return -1;
      coord[axis] = (coord[axis] + dims[axis]) % dims[axis];
    }
    const int nb = rank_of(coord);
    return nb == rank ? -1 : nb;  // periodic wrap on a size-2 axis still dedups below
  }
};

Grid stencil_grid(const WorkloadSpec& spec, const PhaseSpec& phase, bool is_3d) {
  Grid grid;
  grid.nd = is_3d ? 3 : 2;
  if (phase.px > 0) {
    grid.dims[0] = phase.px;
    grid.dims[1] = phase.py;
    grid.dims[2] = is_3d ? phase.pz : 1;
  } else if (is_3d) {
    factor_grid_3d(spec.ranks, &grid.dims[0], &grid.dims[1], &grid.dims[2]);
  } else {
    factor_grid_2d(spec.ranks, &grid.dims[0], &grid.dims[1]);
  }
  return grid;
}

// Messages are tagged with the *sender's* direction, so a receive from side
// d matches the opposite tag: my west neighbour reaches me travelling +x.
int opposite(int direction) { return direction ^ 1; }

// --- patterns ---------------------------------------------------------------

// Halo exchange: per iteration, each rank computes, posts a receive from and
// a send to every existing neighbour (nonblocking), then waits for all.
void emit_stencil(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
                  std::vector<std::vector<TiRecord>>& ranks, std::vector<long long>& next_req,
                  bool is_3d) {
  const Grid grid = stencil_grid(spec, phase, is_3d);
  auto draws = make_draws(spec, phase, phase_index);
  const int directions = 2 * grid.nd;

  for (int iter = 0; iter < phase.iterations; ++iter) {
    const long long bytes = phase.bytes_at(iter);
    for (int r = 0; r < spec.ranks; ++r) {
      auto& out = ranks[static_cast<std::size_t>(r)];
      maybe_compute(out, draws[static_cast<std::size_t>(r)], phase);
      std::vector<long long> reqs;
      for (int d = 0; d < directions; ++d) {
        const int nb = grid.neighbor(r, d, phase.periodic);
        if (nb < 0) continue;
        const long long id = next_req[static_cast<std::size_t>(r)]++;
        out.push_back(p2p_record(TiOp::kIrecv, nb, bytes, opposite(d), id));
        reqs.push_back(id);
      }
      for (int d = 0; d < directions; ++d) {
        const int nb = grid.neighbor(r, d, phase.periodic);
        if (nb < 0) continue;
        const long long id = next_req[static_cast<std::size_t>(r)]++;
        out.push_back(p2p_record(TiOp::kIsend, nb, bytes, d, id));
        reqs.push_back(id);
      }
      if (reqs.empty()) continue;
      TiRecord wait;
      wait.op = TiOp::kWaitall;
      wait.reqs = std::move(reqs);
      out.push_back(std::move(wait));
    }
  }
}

// Ring pipeline: a simultaneous shift — send to the right neighbour while
// receiving from the left one.
void emit_ring(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
               std::vector<std::vector<TiRecord>>& ranks) {
  const int n = spec.ranks;
  auto draws = make_draws(spec, phase, phase_index);
  for (int iter = 0; iter < phase.iterations; ++iter) {
    const long long bytes = phase.bytes_at(iter);
    for (int r = 0; r < n; ++r) {
      auto& out = ranks[static_cast<std::size_t>(r)];
      maybe_compute(out, draws[static_cast<std::size_t>(r)], phase);
      if (n == 1) continue;
      TiRecord rec;
      rec.op = TiOp::kSendrecv;
      rec.peer = (r + 1) % n;
      rec.count = bytes;
      rec.elem = 1;
      rec.tag = 0;
      rec.peer2 = (r + n - 1) % n;
      rec.count2 = bytes;
      rec.elem2 = 1;
      rec.tag2 = 0;
      out.push_back(std::move(rec));
    }
  }
}

// FFT-style transpose: one MPI_Alltoall per iteration, `bytes` per pair.
void emit_alltoall(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
                   std::vector<std::vector<TiRecord>>& ranks) {
  auto draws = make_draws(spec, phase, phase_index);
  for (int iter = 0; iter < phase.iterations; ++iter) {
    const long long bytes = phase.bytes_at(iter);
    for (int r = 0; r < spec.ranks; ++r) {
      auto& out = ranks[static_cast<std::size_t>(r)];
      maybe_compute(out, draws[static_cast<std::size_t>(r)], phase);
      TiRecord rec;
      rec.op = TiOp::kAlltoall;
      rec.count = bytes;
      rec.elem = 1;
      rec.count2 = bytes;
      rec.elem2 = 1;
      out.push_back(std::move(rec));
    }
  }
}

// Tree phases: reduce everything to the root, broadcast the result back —
// the backbone of iterative solvers' convergence checks.
void emit_reduce_bcast(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
                       std::vector<std::vector<TiRecord>>& ranks) {
  auto draws = make_draws(spec, phase, phase_index);
  for (int iter = 0; iter < phase.iterations; ++iter) {
    const long long bytes = phase.bytes_at(iter);
    for (int r = 0; r < spec.ranks; ++r) {
      auto& out = ranks[static_cast<std::size_t>(r)];
      maybe_compute(out, draws[static_cast<std::size_t>(r)], phase);
      TiRecord reduce;
      reduce.op = TiOp::kReduce;
      reduce.count = bytes;
      reduce.elem = 1;
      reduce.peer = phase.root;
      reduce.commutative = phase.commutative;
      out.push_back(std::move(reduce));
      TiRecord bcast;
      bcast.op = TiOp::kBcast;
      bcast.count = bytes;
      bcast.elem = 1;
      bcast.peer = phase.root;
      out.push_back(std::move(bcast));
    }
  }
}

// Dependency sweep over a 2D grid: receive from west and north, compute,
// send to east and south. Ranks on the top-left front start immediately;
// the wave propagates along the diagonal (blocking calls, but the
// dependency graph is a DAG, so the order is deadlock-free).
void emit_wavefront(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
                    std::vector<std::vector<TiRecord>>& ranks) {
  const Grid grid = stencil_grid(spec, phase, /*is_3d=*/false);
  auto draws = make_draws(spec, phase, phase_index);
  const int px = grid.dims[0];
  const int py = grid.dims[1];

  for (int iter = 0; iter < phase.iterations; ++iter) {
    const long long bytes = phase.bytes_at(iter);
    for (int r = 0; r < spec.ranks; ++r) {
      auto& out = ranks[static_cast<std::size_t>(r)];
      int coord[3];
      grid.coord_of(r, coord);
      const int x = coord[0];
      const int y = coord[1];
      if (x > 0) out.push_back(p2p_record(TiOp::kRecv, r - 1, bytes, 0));
      if (y > 0) out.push_back(p2p_record(TiOp::kRecv, r - px, bytes, 1));
      maybe_compute(out, draws[static_cast<std::size_t>(r)], phase);
      if (x < px - 1) out.push_back(p2p_record(TiOp::kSend, r + 1, bytes, 0));
      if (y < py - 1) out.push_back(p2p_record(TiOp::kSend, r + px, bytes, 1));
    }
  }
}

// Seeded sparse point-to-point: every iteration redraws a global edge set
// (each rank sends to `degree` distinct random peers); both endpoints are
// emitted from the same edge list, so the trace always matches up.
void emit_random_sparse(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
                        std::vector<std::vector<TiRecord>>& ranks,
                        std::vector<long long>& next_req) {
  const int n = spec.ranks;
  auto draws = make_draws(spec, phase, phase_index);

  for (int iter = 0; iter < phase.iterations; ++iter) {
    const long long bytes = phase.bytes_at(iter);
    // Odd stream index: the per-rank compute streams above use even ones.
    util::Xoshiro256StarStar edge_rng(
        mix(spec.seed, (static_cast<std::uint64_t>(phase_index) << 1) | 1,
            static_cast<std::uint64_t>(iter)));
    std::vector<std::vector<int>> out_peers(static_cast<std::size_t>(n));
    std::vector<std::vector<int>> in_peers(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      auto& peers = out_peers[static_cast<std::size_t>(r)];
      while (static_cast<int>(peers.size()) < phase.degree) {
        // Uniform over the other ranks; reject repeats (degree < ranks).
        int p = static_cast<int>(
            edge_rng.next_in_range(0, static_cast<std::uint64_t>(n) - 2));
        if (p >= r) ++p;
        if (std::find(peers.begin(), peers.end(), p) != peers.end()) continue;
        peers.push_back(p);
        in_peers[static_cast<std::size_t>(p)].push_back(r);  // senders ascend
      }
    }

    for (int r = 0; r < n; ++r) {
      auto& out = ranks[static_cast<std::size_t>(r)];
      maybe_compute(out, draws[static_cast<std::size_t>(r)], phase);
      std::vector<long long> reqs;
      for (int src : in_peers[static_cast<std::size_t>(r)]) {
        const long long id = next_req[static_cast<std::size_t>(r)]++;
        out.push_back(p2p_record(TiOp::kIrecv, src, bytes, iter, id));
        reqs.push_back(id);
      }
      for (int dst : out_peers[static_cast<std::size_t>(r)]) {
        const long long id = next_req[static_cast<std::size_t>(r)]++;
        out.push_back(p2p_record(TiOp::kIsend, dst, bytes, iter, id));
        reqs.push_back(id);
      }
      if (reqs.empty()) continue;
      TiRecord wait;
      wait.op = TiOp::kWaitall;
      wait.reqs = std::move(reqs);
      out.push_back(std::move(wait));
    }
  }
}

}  // namespace

void factor_grid_2d(int ranks, int* px, int* py) {
  SMPI_REQUIRE(ranks > 0, "cannot factor a non-positive rank count");
  int best = 1;
  for (int d = 1; d * d <= ranks; ++d) {
    if (ranks % d == 0) best = d;
  }
  *px = best;
  *py = ranks / best;
}

void factor_grid_3d(int ranks, int* px, int* py, int* pz) {
  SMPI_REQUIRE(ranks > 0, "cannot factor a non-positive rank count");
  int a = 1;
  for (int d = 1; static_cast<long long>(d) * d * d <= ranks; ++d) {
    if (ranks % d == 0) a = d;
  }
  int b = 1, c = 1;
  factor_grid_2d(ranks / a, &b, &c);
  int dims[3] = {a, b, c};
  std::sort(dims, dims + 3);
  *px = dims[0];
  *py = dims[1];
  *pz = dims[2];
}

void emit_phase(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
                std::vector<std::vector<trace::TiRecord>>& ranks,
                std::vector<long long>& next_req) {
  SMPI_REQUIRE(static_cast<int>(ranks.size()) == spec.ranks &&
                   static_cast<int>(next_req.size()) == spec.ranks,
               "workload emission: rank-list size mismatch");
  switch (phase.pattern) {
    case Pattern::kStencil2d:
      emit_stencil(spec, phase, phase_index, ranks, next_req, /*is_3d=*/false);
      return;
    case Pattern::kStencil3d:
      emit_stencil(spec, phase, phase_index, ranks, next_req, /*is_3d=*/true);
      return;
    case Pattern::kRing:
      emit_ring(spec, phase, phase_index, ranks);
      return;
    case Pattern::kAlltoall:
      emit_alltoall(spec, phase, phase_index, ranks);
      return;
    case Pattern::kReduceBcast:
      emit_reduce_bcast(spec, phase, phase_index, ranks);
      return;
    case Pattern::kWavefront:
      emit_wavefront(spec, phase, phase_index, ranks);
      return;
    case Pattern::kRandomSparse:
      emit_random_sparse(spec, phase, phase_index, ranks, next_req);
      return;
  }
  SMPI_UNREACHABLE("bad workload pattern");
}

}  // namespace smpi::workload
