// Workload compiler: spec -> TI trace.
//
// `generate_workload` compiles a declarative spec into an in-memory TiTrace
// (init ... phases ... finalize per rank) that replay_trace and the
// campaign engine consume directly; `write_workload` routes the same
// records through trace/writer, producing a trace directory
// indistinguishable from a capture — `ti_inspect`, `smpirun --replay`, and
// `smpi_campaign` need no workload awareness at all.
//
// Generation is deterministic: one spec + one seed produce bit-identical
// records (and therefore bit-identical trace files) on every run and
// platform, which is what lets a campaign regenerate a workload inside
// each worker process and still report results that are independent of the
// worker count.
#pragma once

#include <string>

#include "trace/reader.hpp"
#include "workload/spec.hpp"

namespace smpi::workload {

// Compile the spec. Throws util::ContractError on contract violations the
// parser could not see (none today; kept for forward compatibility).
trace::TiTrace generate_workload(const WorkloadSpec& spec);

// Write an already-generated trace as a rank-file directory (manifest +
// rank_<r>.ti) via trace::TiWriter.
void write_trace(const trace::TiTrace& trace, const std::string& dir);

// generate + write in one step (the CLI's --out path).
void write_workload(const WorkloadSpec& spec, const std::string& dir);

}  // namespace smpi::workload
