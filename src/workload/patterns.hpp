// Pattern emitters: one function per declarative communication pattern,
// appending TI records for every rank of a phase.
//
// Emission invariants (what makes a generated phase replayable):
//  * every send has exactly one matching receive — patterns are generated
//    globally, so both endpoints of an edge are emitted from the same
//    decision;
//  * nonblocking operations use per-rank request ids handed out by the
//    shared `next_req` counters (unique for the whole trace, so a campaign
//    can splice phases without id collisions);
//  * record order per rank is the order a real implementation of the
//    pattern would issue the calls (receives posted before sends, waitall
//    last), so a hand-written online app of the same pattern produces an
//    identical record stream — the equivalence tests rely on this;
//  * all randomness (compute imbalance/jitter, sparse edges) flows from
//    counter-seeded per-(phase, rank) streams, never from a shared cursor,
//    so adding a phase or reordering emission cannot shift another phase's
//    draws.
#pragma once

#include <vector>

#include "trace/record.hpp"
#include "workload/spec.hpp"

namespace smpi::workload {

// Appends the records of `phase` (index `phase_index` in the spec) to every
// rank's record list. `next_req[r]` is rank r's next nonblocking-request id.
void emit_phase(const WorkloadSpec& spec, const PhaseSpec& phase, int phase_index,
                std::vector<std::vector<trace::TiRecord>>& ranks,
                std::vector<long long>& next_req);

// Near-square (2D) / near-cubic (3D) factorization used when a spec leaves
// the process grid to the generator: dims are non-decreasing and their
// product is `ranks`. Exposed for tests and the CLI summary.
void factor_grid_2d(int ranks, int* px, int* py);
void factor_grid_3d(int ranks, int* px, int* py, int* pz);

}  // namespace smpi::workload
