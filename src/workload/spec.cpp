#include "workload/spec.hpp"

#include "util/check.hpp"

namespace smpi::workload {

namespace {

const std::pair<const char*, Pattern> kPatterns[] = {
    {"stencil2d", Pattern::kStencil2d},   {"stencil3d", Pattern::kStencil3d},
    {"ring", Pattern::kRing},             {"alltoall", Pattern::kAlltoall},
    {"reduce_bcast", Pattern::kReduceBcast}, {"wavefront", Pattern::kWavefront},
    {"random_sparse", Pattern::kRandomSparse},
};

int parse_positive_int(const util::JsonValue& v, const char* what) {
  const long long value = v.as_int();
  SMPI_REQUIRE(value > 0, std::string("workload spec: ") + what + " must be > 0");
  SMPI_REQUIRE(value <= 1 << 24, std::string("workload spec: ") + what + " is implausibly large");
  return static_cast<int>(value);
}

std::vector<long long> parse_bytes(const util::JsonValue& v) {
  std::vector<long long> bytes;
  if (v.is_array()) {
    for (const auto& item : v.items()) bytes.push_back(item.as_int());
  } else {
    bytes.push_back(v.as_int());
  }
  SMPI_REQUIRE(!bytes.empty(), "workload spec: bytes schedule is empty");
  for (long long b : bytes) {
    SMPI_REQUIRE(b >= 0, "workload spec: bytes must be >= 0");
  }
  return bytes;
}

double parse_halfwidth(const util::JsonValue& v, const char* what) {
  const double value = v.as_number();
  SMPI_REQUIRE(value >= 0 && value < 1,
               std::string("workload spec: compute.") + what + " must be in [0, 1)");
  return value;
}

PhaseSpec parse_phase(const util::JsonValue& doc, int ranks, std::size_t index) {
  const std::string context = "workload phase " + std::to_string(index);
  SMPI_REQUIRE(doc.is_object(), context + " must be a JSON object");
  PhaseSpec phase;
  const std::string pattern = doc.at("pattern", context).as_string();
  SMPI_REQUIRE(pattern_from_name(pattern, &phase.pattern),
               context + ": unknown pattern '" + pattern + "'");

  if (const auto* iterations = doc.find("iterations")) {
    phase.iterations = parse_positive_int(*iterations, "iterations");
  }
  if (const auto* bytes = doc.find("bytes")) phase.bytes = parse_bytes(*bytes);
  if (const auto* compute = doc.find("compute")) {
    SMPI_REQUIRE(compute->is_object(), context + ": compute must be an object");
    if (const auto* flops = compute->find("flops")) {
      phase.compute.flops = flops->as_number();
      SMPI_REQUIRE(phase.compute.flops >= 0, context + ": compute.flops must be >= 0");
    }
    if (const auto* imbalance = compute->find("imbalance")) {
      phase.compute.imbalance = parse_halfwidth(*imbalance, "imbalance");
    }
    if (const auto* jitter = compute->find("jitter")) {
      phase.compute.jitter = parse_halfwidth(*jitter, "jitter");
    }
  }
  if (const auto* px = doc.find("px")) phase.px = parse_positive_int(*px, "px");
  if (const auto* py = doc.find("py")) phase.py = parse_positive_int(*py, "py");
  if (const auto* pz = doc.find("pz")) phase.pz = parse_positive_int(*pz, "pz");
  if (const auto* periodic = doc.find("periodic")) phase.periodic = periodic->as_bool();
  if (const auto* root = doc.find("root")) {
    phase.root = static_cast<int>(root->as_int());
    SMPI_REQUIRE(phase.root >= 0 && phase.root < ranks, context + ": root out of range");
  }
  if (const auto* commutative = doc.find("commutative")) {
    phase.commutative = commutative->as_bool();
  }
  if (const auto* degree = doc.find("degree")) {
    phase.degree = static_cast<int>(degree->as_int());
    SMPI_REQUIRE(phase.degree >= 0, context + ": degree must be >= 0");
  }

  // Grid contract: give the full grid or none of it, and it must tile the
  // rank count exactly — a silently truncated grid would drop ranks.
  const bool wants_grid = phase.pattern == Pattern::kStencil2d ||
                          phase.pattern == Pattern::kStencil3d ||
                          phase.pattern == Pattern::kWavefront;
  const bool is_3d = phase.pattern == Pattern::kStencil3d;
  if (wants_grid) {
    const bool any = phase.px > 0 || phase.py > 0 || phase.pz > 0;
    if (any) {
      SMPI_REQUIRE(phase.px > 0 && phase.py > 0 && (!is_3d || phase.pz > 0),
                   context + ": give the whole process grid (px, py" +
                       (is_3d ? ", pz" : "") + ") or none of it");
      SMPI_REQUIRE(!is_3d || phase.pz > 0, context + ": stencil3d needs pz");
      const long long cells = static_cast<long long>(phase.px) * phase.py *
                              (is_3d ? phase.pz : 1);
      SMPI_REQUIRE(cells == ranks, context + ": process grid does not tile " +
                                       std::to_string(ranks) + " ranks");
    }
  } else {
    SMPI_REQUIRE(phase.px == 0 && phase.py == 0 && phase.pz == 0,
                 context + ": pattern '" + pattern + "' does not take a process grid");
  }
  if (phase.pattern == Pattern::kRandomSparse) {
    SMPI_REQUIRE(phase.degree < ranks, context + ": degree must be < ranks");
  }
  return phase;
}

}  // namespace

const char* pattern_name(Pattern pattern) {
  for (const auto& [name, p] : kPatterns) {
    if (p == pattern) return name;
  }
  SMPI_UNREACHABLE("bad workload pattern");
}

bool pattern_from_name(const std::string& name, Pattern* out) {
  for (const auto& [candidate, p] : kPatterns) {
    if (name == candidate) {
      *out = p;
      return true;
    }
  }
  return false;
}

const std::vector<std::string>& pattern_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, p] : kPatterns) out.emplace_back(name);
    return out;
  }();
  return names;
}

WorkloadSpec WorkloadSpec::parse(const util::JsonValue& doc) {
  SMPI_REQUIRE(doc.is_object(), "workload spec must be a JSON object");
  WorkloadSpec spec;
  if (const auto* name = doc.find("name")) spec.name = name->as_string();
  spec.ranks = parse_positive_int(doc.at("ranks", "workload spec"), "ranks");
  if (const auto* seed = doc.find("seed")) {
    spec.seed = static_cast<std::uint64_t>(seed->as_int());
  }

  if (const auto* phases = doc.find("phases")) {
    SMPI_REQUIRE(phases->is_array(), "workload spec: phases must be an array");
    SMPI_REQUIRE(!phases->items().empty(), "workload spec: phases is empty");
    for (std::size_t i = 0; i < phases->items().size(); ++i) {
      spec.phases.push_back(parse_phase(phases->items()[i], spec.ranks, i));
    }
  } else {
    // One-pattern shorthand: the top-level object is the single phase.
    spec.phases.push_back(parse_phase(doc, spec.ranks, 0));
  }
  return spec;
}

WorkloadSpec WorkloadSpec::parse_file(const std::string& path) {
  return parse(util::parse_json_file(path));
}

}  // namespace smpi::workload
