// Workload specifications: declarative MPI communication patterns.
//
// A workload spec describes a synthetic MPI application as a sequence of
// *phases*, each an instance of a parameterized communication pattern
// (stencil halo exchange, ring pipeline, alltoall transpose, ...). The
// generator (workload/generate.hpp) compiles the spec into ordinary TI
// trace records, so everything downstream of a capture — `smpirun
// --replay`, `ti_inspect`, Paje export, the campaign engine — consumes a
// generated workload exactly as it would a captured one. Scenarios no
// longer require application code: any rank count, any message size, any
// compute imbalance is one JSON file away.
//
// Spec format (JSON):
//
//   {
//     "name": "halo-sweep",
//     "ranks": 64,
//     "seed": 42,
//     "phases": [
//       {
//         "pattern": "stencil2d",
//         "iterations": 10,
//         "bytes": 8192,
//         "compute": {"flops": 1e6, "imbalance": 0.2, "jitter": 0.05},
//         "px": 8, "py": 8,
//         "periodic": false
//       },
//       {"pattern": "reduce_bcast", "bytes": 8, "root": 0}
//     ]
//   }
//
// A spec without "phases" is treated as a single phase described by the
// top-level object itself (so the common one-pattern case needs no
// nesting). Phase fields:
//
//   pattern      stencil2d | stencil3d | ring | alltoall | reduce_bcast |
//                wavefront | random_sparse                       (required)
//   iterations   pattern repetitions                       (int >= 1, def 1)
//   bytes        per-message payload: a number, or an array cycled per
//                iteration (a message-size schedule)     (>= 0, default 1024)
//   compute      {"flops": F, "imbalance": I, "jitter": J}: every rank
//                computes F flops before communicating each iteration,
//                scaled by a per-rank factor drawn once uniformly from
//                [1-I, 1+I] (static load imbalance) and a per-iteration
//                factor from [1-J, 1+J] (dynamic jitter), both from the
//                seeded generator — bit-reproducible per seed. (default 0)
//   Pattern-specific:
//     stencil2d     px, py     process grid (0 = near-square factorization;
//                              px*py must equal ranks when given)
//                   periodic   wrap halos around the grid (default false)
//     stencil3d     px, py, pz, periodic — 6-neighbour halo exchange
//     ring          (none)     sendrecv shift around the rank ring
//     alltoall      (none)     bytes is the per-pair payload
//     reduce_bcast  root       reduce to root then bcast from it (def 0)
//                   commutative  reduction-op commutativity (default true)
//     wavefront     px, py     dependency sweep: recv from west/north,
//                              compute, send to east/south
//     random_sparse degree     distinct random peers each rank sends to per
//                              iteration (default 3, < ranks); the edge set
//                              is redrawn per iteration from the seed
//
// Every random draw flows from `seed` through counter-based per-(phase,
// rank) streams, so generation is bit-identical across runs, platforms,
// and whether the trace is kept in memory or written through trace/writer.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace smpi::workload {

enum class Pattern {
  kStencil2d,
  kStencil3d,
  kRing,
  kAlltoall,
  kReduceBcast,
  kWavefront,
  kRandomSparse,
};

// Pattern <-> spec-name mapping; `pattern_names` is the `--list` catalog.
const char* pattern_name(Pattern pattern);
bool pattern_from_name(const std::string& name, Pattern* out);
const std::vector<std::string>& pattern_names();

struct ComputeSpec {
  double flops = 0;      // per-rank flops per iteration (before scaling)
  double imbalance = 0;  // static per-rank scale half-width, in [0, 1)
  double jitter = 0;     // per-iteration scale half-width, in [0, 1)
};

struct PhaseSpec {
  Pattern pattern = Pattern::kStencil2d;
  int iterations = 1;
  std::vector<long long> bytes = {1024};  // cycled per iteration
  ComputeSpec compute;
  // stencil / wavefront process grid (0 = factorize ranks automatically).
  int px = 0;
  int py = 0;
  int pz = 0;
  bool periodic = false;
  int root = 0;             // reduce_bcast
  bool commutative = true;  // reduce_bcast
  int degree = 3;           // random_sparse out-degree

  // Payload size for iteration `iter` (the schedule cycles).
  long long bytes_at(int iter) const {
    return bytes[static_cast<std::size_t>(iter) % bytes.size()];
  }
};

struct WorkloadSpec {
  std::string name = "workload";
  int ranks = 0;  // required (> 0)
  std::uint64_t seed = 1;
  std::vector<PhaseSpec> phases;

  // Throws util::ContractError on unknown patterns, bad grids, or
  // out-of-contract values — a typo must not silently generate nothing.
  static WorkloadSpec parse(const util::JsonValue& doc);
  static WorkloadSpec parse_file(const std::string& path);
};

}  // namespace smpi::workload
