#include "workload/generate.hpp"

#include "trace/writer.hpp"
#include "workload/patterns.hpp"

namespace smpi::workload {

trace::TiTrace generate_workload(const WorkloadSpec& spec) {
  trace::TiTrace trace;
  trace.nranks = spec.ranks;
  trace.app = spec.name;
  trace.ranks.resize(static_cast<std::size_t>(spec.ranks));

  for (auto& records : trace.ranks) {
    trace::TiRecord init;
    init.op = trace::TiOp::kInit;
    records.push_back(init);
  }

  std::vector<long long> next_req(static_cast<std::size_t>(spec.ranks), 0);
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    emit_phase(spec, spec.phases[i], static_cast<int>(i), trace.ranks, next_req);
  }

  for (auto& records : trace.ranks) {
    trace::TiRecord finalize;
    finalize.op = trace::TiOp::kFinalize;
    records.push_back(finalize);
  }
  return trace;
}

void write_trace(const trace::TiTrace& trace, const std::string& dir) {
  trace::TiWriter writer(dir, trace.nranks, trace.app);
  for (int rank = 0; rank < trace.nranks; ++rank) {
    for (const auto& record : trace.ranks[static_cast<std::size_t>(rank)]) {
      writer.append(rank, record);
    }
  }
  writer.finish();
}

void write_workload(const WorkloadSpec& spec, const std::string& dir) {
  write_trace(generate_workload(spec), dir);
}

}  // namespace smpi::workload
